#include "matching/serialization.h"

#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "tests/test_util.h"

namespace dd {
namespace {

void ExpectEqualMatching(const MatchingRelation& a, const MatchingRelation& b) {
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  EXPECT_EQ(a.dmax(), b.dmax());
  EXPECT_EQ(a.attribute_names(), b.attribute_names());
  EXPECT_EQ(a.pairs(), b.pairs());
  for (std::size_t c = 0; c < a.num_attributes(); ++c) {
    EXPECT_EQ(a.column(c), b.column(c)) << "column " << c;
  }
}

// Splices a current-format payload into the legacy v1 layout: magic,
// version word 1, body — no checksum word.
std::string MakeLegacyV1(const std::string& v2) {
  std::string v1 = v2.substr(0, 4);
  const std::uint32_t version = 1;
  v1.append(reinterpret_cast<const char*>(&version), sizeof(version));
  v1 += v2.substr(16);  // Skip magic + version + checksum.
  return v1;
}

TEST(SerializationTest, RoundTripInMemory) {
  MatchingRelation m = testutil::RandomMatching(3, 9, 500, 42);
  std::string bytes = SerializeMatchingRelation(m);
  auto back = DeserializeMatchingRelation(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectEqualMatching(m, *back);
}

TEST(SerializationTest, RoundTripEmptyRelation) {
  MatchingRelation m({"only"}, 4);
  auto back = DeserializeMatchingRelation(SerializeMatchingRelation(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_tuples(), 0u);
  EXPECT_EQ(back->attribute_names(), (std::vector<std::string>{"only"}));
}

TEST(SerializationTest, RoundTripViaFile) {
  MatchingRelation m = testutil::HotelMatching(10);
  const std::string path = ::testing::TempDir() + "/dd_matching_test.ddmr";
  ASSERT_TRUE(WriteMatchingFile(m, path).ok());
  auto back = ReadMatchingFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectEqualMatching(m, *back);
  std::remove(path.c_str());
}

TEST(SerializationTest, BadMagicRejected) {
  std::string bytes = SerializeMatchingRelation(testutil::RandomMatching(2, 5, 20, 1));
  bytes[0] = 'X';
  EXPECT_FALSE(DeserializeMatchingRelation(bytes).ok());
}

TEST(SerializationTest, TruncationRejectedAtEveryPrefix) {
  std::string bytes =
      SerializeMatchingRelation(testutil::RandomMatching(2, 5, 20, 1));
  // Every strict prefix must fail cleanly (parse-don't-crash).
  for (std::size_t len : {0ul, 3ul, 8ul, 15ul, bytes.size() / 2,
                          bytes.size() - 1}) {
    EXPECT_FALSE(
        DeserializeMatchingRelation(std::string_view(bytes).substr(0, len))
            .ok())
        << "prefix " << len;
  }
}

TEST(SerializationTest, TrailingGarbageRejected) {
  std::string bytes =
      SerializeMatchingRelation(testutil::RandomMatching(2, 5, 20, 1));
  bytes += "extra";
  EXPECT_FALSE(DeserializeMatchingRelation(bytes).ok());
}

TEST(SerializationTest, CorruptLevelRejected) {
  MatchingRelation m({"a"}, 3);
  m.AddTuple(0, 1, {2});
  // The legacy layout has no checksum, so the corruption must reach
  // (and be caught by) structural validation of the body.
  std::string bytes = MakeLegacyV1(SerializeMatchingRelation(m));
  bytes.back() = static_cast<char>(200);  // Level 200 > dmax 3.
  EXPECT_FALSE(DeserializeMatchingRelation(bytes).ok());
}

TEST(SerializationTest, ChecksumDetectsBodyCorruption) {
  std::string bytes =
      SerializeMatchingRelation(testutil::RandomMatching(2, 5, 40, 3));
  // Flip one bit in every body byte position class: first, middle, last.
  for (std::size_t pos : {std::size_t{16}, (16 + bytes.size()) / 2,
                          bytes.size() - 1}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x20);
    auto back = DeserializeMatchingRelation(corrupted);
    ASSERT_FALSE(back.ok()) << "corruption at byte " << pos;
    EXPECT_NE(back.status().ToString().find("checksum"), std::string::npos)
        << back.status();
  }
}

TEST(SerializationTest, LegacyV1StillReadable) {
  MatchingRelation m = testutil::RandomMatching(3, 7, 120, 11);
  std::string v1 = MakeLegacyV1(SerializeMatchingRelation(m));
  auto back = DeserializeMatchingRelation(v1);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectEqualMatching(m, *back);
}

TEST(SerializationTest, FutureVersionRejected) {
  std::string bytes =
      SerializeMatchingRelation(testutil::RandomMatching(2, 5, 20, 1));
  const std::uint32_t version = kMatchingFormatVersion + 1;
  std::memcpy(bytes.data() + 4, &version, sizeof(version));
  auto back = DeserializeMatchingRelation(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().ToString().find("unsupported"), std::string::npos)
      << back.status();
}

TEST(SerializationTest, ChecksumIsDeterministic) {
  // Same relation, two serializations: byte-identical (the checksum is
  // a pure function of the body).
  MatchingRelation m = testutil::RandomMatching(2, 6, 64, 5);
  EXPECT_EQ(SerializeMatchingRelation(m), SerializeMatchingRelation(m));
  // Known-answer check pinning the FNV-1a constants.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_EQ(ReadMatchingFile("/no/such/dd_file.ddmr").status().code(),
            StatusCode::kIoError);
}

TEST(SerializationTest, LoadedRelationDrivesDetermination) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 400, 9);
  auto back = DeserializeMatchingRelation(SerializeMatchingRelation(m));
  ASSERT_TRUE(back.ok());
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions opts;
  auto original = DetermineThresholds(m, rule, opts);
  auto loaded = DetermineThresholds(*back, rule, opts);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(original->patterns.size(), loaded->patterns.size());
  if (!original->patterns.empty()) {
    EXPECT_NEAR(original->patterns[0].utility, loaded->patterns[0].utility,
                1e-12);
  }
}

}  // namespace
}  // namespace dd
