// Tests for the live-telemetry exporters (src/obs/export): Prometheus
// text exposition + embedded HTTP server, Chrome trace-event JSON, and
// the FTDC-style delta sampler. Golden strings are built from
// hand-constructed snapshots so the expected exposition is exact; the
// HTTP test speaks raw sockets against an ephemeral port; the sampler
// tests assert the delta encoding is exactly invertible.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/export/chrome_trace.h"
#include "obs/export/http_server.h"
#include "obs/export/prometheus.h"
#include "obs/export/sampler.h"
#include "obs/metrics.h"
#include "obs/prof/folded.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace dd {
namespace {

// --------------------------------------------------------------------
// Metric-name sanitization

TEST(SanitizeMetricName, DotsBecomeUnderscores) {
  EXPECT_EQ(obs::SanitizeMetricName("provider.rows_scanned"),
            "provider_rows_scanned");
  EXPECT_EQ(obs::SanitizeMetricName("a.b.c"), "a_b_c");
}

TEST(SanitizeMetricName, LegalNamesPassThrough) {
  EXPECT_EQ(obs::SanitizeMetricName("already_legal_123"),
            "already_legal_123");
  EXPECT_EQ(obs::SanitizeMetricName("ns:subsystem_total"),
            "ns:subsystem_total");
}

TEST(SanitizeMetricName, IllegalCharactersReplaced) {
  EXPECT_EQ(obs::SanitizeMetricName("pa.evaluated_per_lhs#sum"),
            "pa_evaluated_per_lhs_sum");
  EXPECT_EQ(obs::SanitizeMetricName("weird name-with/stuff"),
            "weird_name_with_stuff");
}

TEST(SanitizeMetricName, LeadingDigitPrefixed) {
  EXPECT_EQ(obs::SanitizeMetricName("0count"), "_0count");
  EXPECT_EQ(obs::SanitizeMetricName("9.lives"), "_9_lives");
}

TEST(SanitizeMetricName, EmptyBecomesUnderscore) {
  EXPECT_EQ(obs::SanitizeMetricName(""), "_");
}

// --------------------------------------------------------------------
// Prometheus exposition

obs::MetricsSnapshot MakeSnapshot() {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"incr.batches", 7});
  snap.counters.push_back({"provider.rows_scanned", 12345});
  snap.gauges.push_back({"incr.drift", 0.25});
  obs::MetricsSnapshot::HistogramValue hist;
  hist.name = "provider.scan_ms";
  hist.bounds = {1.0, 10.0, 100.0};
  hist.buckets = {4, 3, 2, 1};  // Last bucket is overflow.
  hist.count = 10;
  hist.sum = 150.5;
  snap.histograms.push_back(hist);
  return snap;
}

TEST(Prometheus, GoldenExposition) {
  const std::string expected =
      "# TYPE incr_batches counter\n"
      "incr_batches 7\n"
      "# TYPE provider_rows_scanned counter\n"
      "provider_rows_scanned 12345\n"
      "# TYPE incr_drift gauge\n"
      "incr_drift 0.25\n"
      "# TYPE provider_scan_ms histogram\n"
      "provider_scan_ms_bucket{le=\"1\"} 4\n"
      "provider_scan_ms_bucket{le=\"10\"} 7\n"
      "provider_scan_ms_bucket{le=\"100\"} 9\n"
      "provider_scan_ms_bucket{le=\"+Inf\"} 10\n"
      "provider_scan_ms_sum 150.5\n"
      "provider_scan_ms_count 10\n";
  EXPECT_EQ(obs::MetricsSnapshotToPrometheus(MakeSnapshot()), expected);
}

TEST(Prometheus, BucketsAreCumulativeAndEndAtCount) {
  const std::string text = obs::MetricsSnapshotToPrometheus(MakeSnapshot());
  // The +Inf bucket must equal _count per the exposition format spec.
  EXPECT_NE(text.find("provider_scan_ms_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("provider_scan_ms_count 10\n"), std::string::npos);
}

TEST(Prometheus, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(obs::MetricsSnapshotToPrometheus(obs::MetricsSnapshot{}), "");
}

// --------------------------------------------------------------------
// Histogram percentiles

TEST(HistogramPercentile, InterpolatesWithinBucket) {
  obs::MetricsSnapshot::HistogramValue hist;
  hist.bounds = {10.0, 20.0};
  hist.buckets = {10, 10, 0};
  hist.count = 20;
  // Rank 10 is exactly the end of the first bucket.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.5), 10.0);
  // Rank 15 is halfway through the second bucket (10, 20].
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 1.0), 20.0);
}

TEST(HistogramPercentile, OverflowClampsToLastBound) {
  obs::MetricsSnapshot::HistogramValue hist;
  hist.bounds = {10.0};
  hist.buckets = {1, 9};  // 9 observations above the last bound.
  hist.count = 10;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.99), 10.0);
}

TEST(HistogramPercentile, EmptyHistogramIsNaN) {
  obs::MetricsSnapshot::HistogramValue hist;
  EXPECT_TRUE(std::isnan(obs::HistogramPercentile(hist, 0.5)));
  hist.bounds = {10.0, 20.0};
  hist.buckets = {0, 0, 0};
  hist.count = 0;
  EXPECT_TRUE(std::isnan(obs::HistogramPercentile(hist, 0.5)));
}

TEST(HistogramPercentile, SingleBucketReturnsExactBound) {
  obs::MetricsSnapshot::HistogramValue hist;
  hist.bounds = {10.0, 20.0, 30.0};
  hist.buckets = {0, 7, 0, 0};
  hist.count = 7;
  // All observations share bucket (10, 20]: every percentile is its
  // upper bound, with no interpolated spread.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.01), 20.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.99), 20.0);
}

TEST(HistogramPercentile, SingleOverflowBucketClampsToLastBound) {
  obs::MetricsSnapshot::HistogramValue hist;
  hist.bounds = {10.0};
  hist.buckets = {0, 5};  // Only the overflow bucket is populated.
  hist.count = 5;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(hist, 0.5), 10.0);
}

// --------------------------------------------------------------------
// Chrome trace export

TEST(ChromeTrace, GoldenSingleRoot) {
  obs::TraceSnapshot trace;
  obs::SpanStats child;
  child.name = "search";
  child.count = 2;
  child.total_seconds = 0.001;  // 1000 us.
  child.self_seconds = 0.001;
  obs::SpanStats root;
  root.name = "determine";
  root.count = 1;
  root.total_seconds = 0.0025;  // 2500 us.
  root.self_seconds = 0.0015;
  root.children.push_back(child);
  trace.roots.push_back(root);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"ddthreshold\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"determine\"}},"
      "{\"name\":\"determine\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":0.000,\"dur\":2500.000,"
      "\"args\":{\"count\":1,\"self_ms\":1.500000}},"
      "{\"name\":\"search\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":0.000,\"dur\":1000.000,"
      "\"args\":{\"count\":2,\"self_ms\":1.000000}}"
      "]}";
  EXPECT_EQ(obs::TraceSnapshotToChromeTrace(trace), expected);
}

TEST(ChromeTrace, SiblingsLaidOutBackToBack) {
  obs::TraceSnapshot trace;
  obs::SpanStats a, b, root;
  a.name = "a";
  a.total_seconds = 0.001;
  b.name = "b";
  b.total_seconds = 0.002;
  root.name = "root";
  root.total_seconds = 0.004;
  root.children = {a, b};
  trace.roots.push_back(root);

  const std::string json = obs::TraceSnapshotToChromeTrace(trace);
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  // b starts where a ends (1000 us into the parent interval).
  EXPECT_NE(json.find("\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                      "\"ts\":1000.000,\"dur\":2000.000"),
            std::string::npos)
      << json;
}

TEST(ChromeTrace, RealTracerSnapshotIsValidJson) {
  obs::Tracer::Global().Reset();
  obs::Tracer::Global().set_enabled(true);
  {
    obs::TraceSpan outer("export_outer");
    obs::TraceSpan inner("export_inner \"quoted\"");
  }
  // Worker spans become separate roots / tracks.
  ParallelFor(16, 4, [](std::size_t, std::size_t, std::size_t) {
    obs::TraceSpan span("export_worker");
  });
  const std::string json =
      obs::TraceSnapshotToChromeTrace(obs::Tracer::Global().Snapshot());
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("export_outer"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  obs::Tracer::Global().Reset();
}

TEST(ChromeTrace, WriteToFile) {
  obs::TraceSnapshot trace;
  obs::SpanStats root;
  root.name = "write_test";
  root.total_seconds = 0.001;
  trace.roots.push_back(root);
  const std::string path = ::testing::TempDir() + "/chrome_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(trace, path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_TRUE(testutil::JsonChecker(contents).Valid()) << contents;
  EXPECT_NE(contents.find("write_test"), std::string::npos);
}

// --------------------------------------------------------------------
// HTTP server (raw-socket e2e on an ephemeral port)

std::string HttpGet(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServer, ServesMetricsAndHealthz) {
  obs::MetricsRegistry::Global()
      .GetCounter("export_test.http_counter")
      .Increment();
  auto server = obs::MetricsHttpServer::Start(0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();
  ASSERT_GT(port, 0);

  const std::string metrics =
      HttpGet(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("export_test_http_counter 1"), std::string::npos)
      << metrics;

  const std::string health =
      HttpGet(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("application/json"), std::string::npos) << health;
  // JSON body with build provenance and liveness numbers.
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"version\":\""), std::string::npos);
  EXPECT_NE(health.find("\"git_hash\":\""), std::string::npos);
  EXPECT_NE(health.find("\"git_dirty\":"), std::string::npos);
  // The stripped hash never carries the dirty marker; the flag does.
  EXPECT_EQ(health.find("+dirty"), std::string::npos) << health;
  EXPECT_NE(health.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(health.find("\"live_tuples\":"), std::string::npos);
  EXPECT_NE(health.find("\"matching_tuples\":"), std::string::npos);
  const std::size_t body_start = health.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos);
  EXPECT_TRUE(testutil::JsonChecker(health.substr(body_start + 4)).Valid())
      << health;

  const std::string missing =
      HttpGet(port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string post =
      HttpGet(port, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  EXPECT_EQ((*server)->requests_served(), 4u);
  (*server)->Stop();
  (*server)->Stop();  // Idempotent.
}

TEST(MetricsHttpServer, ServesWhileMetricsAreWritten) {
  auto server = obs::MetricsHttpServer::Start(0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  // Hammer the registry from a worker thread while scraping: the scrape
  // must always see a consistent exposition, never crash or hang. The
  // handles are registered up front so the name exists from scrape one.
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("export_test.hammered");
  obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "export_test.hammered_ms", obs::DefaultLatencyBoundsMs());
  std::atomic<bool> done{false};
  std::thread writer([&done, &counter, &hist] {
    std::uint64_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      counter.Increment();
      hist.Observe(static_cast<double>(i % 500));
      ++i;
    }
  });
  for (int scrape = 0; scrape < 10; ++scrape) {
    const std::string response =
        HttpGet(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("export_test_hammered"), std::string::npos);
  }
  done.store(true);
  writer.join();
}

// /debug/prof runs a live capture while the process is busy (a writer
// thread plus pooled ParallelFor work, as `ddtool serve` would be
// during ingestion) and must come back with parseable folded lines.
// Also covered by the TSan CI job.
TEST(MetricsHttpServer, DebugProfCapturesUnderLoad) {
  auto server = obs::MetricsHttpServer::Start(0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  std::atomic<bool> done{false};
  std::thread ingester([&done] {
    std::atomic<std::uint64_t> sink{0};
    while (!done.load(std::memory_order_relaxed)) {
      ParallelFor("export_test.ingest", 256, 2,
                  [&sink](std::size_t, std::size_t begin, std::size_t end) {
                    std::uint64_t acc = 0;
                    for (std::size_t i = begin; i < end; ++i) {
                      acc += i * i + (acc >> 3);
                    }
                    sink.fetch_add(acc, std::memory_order_relaxed);
                  });
    }
  });

  const std::string response = HttpGet(
      port, "GET /debug/prof?seconds=1&hz=251 HTTP/1.1\r\nHost: t\r\n\r\n");
  done.store(true);
  ingester.join();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  const std::size_t body_start = response.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos);
  const std::string body = response.substr(body_start + 4);
  // A 1 s busy capture at 251 Hz cannot come back empty, and every
  // line must parse as "<stack> <count>" with the span:/phase: roots.
  obs::prof::FoldedProfile folded;
  ASSERT_TRUE(obs::prof::ParseFolded(body, &folded).ok()) << body;
  EXPECT_FALSE(folded.empty()) << body;
  for (const auto& [key, hits] : folded.stacks) {
    EXPECT_EQ(key.rfind("span:", 0), 0u) << key;
    EXPECT_NE(key.find(";phase:"), std::string::npos) << key;
    EXPECT_GT(hits, 0u);
  }
  // Bad parameters clamp rather than fail; a second capture can start
  // right after the first finished.
  const std::string clamped = HttpGet(
      port, "GET /debug/prof?seconds=0&hz=-3 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(clamped.find("HTTP/1.1 200 OK"), std::string::npos) << clamped;
}

// --------------------------------------------------------------------
// FTDC-style sampler

TEST(Sampler, FlattenSnapshotIsCanonical) {
  const obs::SampleView view = obs::FlattenSnapshot(MakeSnapshot());
  // 2 counters + 4 buckets + 1 histogram count.
  ASSERT_EQ(view.counters.size(), 7u);
  // 1 gauge + 1 histogram sum.
  ASSERT_EQ(view.gauges.size(), 2u);
  for (std::size_t i = 1; i < view.counters.size(); ++i) {
    EXPECT_LT(view.counters[i - 1].first, view.counters[i].first);
  }
  for (std::size_t i = 1; i < view.gauges.size(); ++i) {
    EXPECT_LT(view.gauges[i - 1].first, view.gauges[i].first);
  }
}

TEST(Sampler, DeltaFramesReconstructExactly) {
  obs::SamplerOptions options;
  options.period_ms = 1000000;  // Tick manually.
  auto sampler = obs::MetricsSampler::Start(options);
  ASSERT_TRUE(sampler.ok());

  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("export_test.sampled");
  obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("export_test.sampled_gauge");
  counter.Increment();
  (*sampler)->SampleOnce();  // Full (new schema).
  counter.Increment();
  gauge.Set(1.5);
  (*sampler)->SampleOnce();  // Delta.
  counter.Increment();
  (*sampler)->SampleOnce();  // Delta.

  const std::vector<obs::SampleFrame> ring = (*sampler)->Ring();
  ASSERT_GE(ring.size(), 3u);
  EXPECT_TRUE(ring.front().full);
  EXPECT_FALSE(ring.back().full);

  auto decoded = obs::DecodeFrames(ring);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const obs::SampleView live =
      obs::FlattenSnapshot(obs::MetricsRegistry::Global().Snapshot());
  ASSERT_EQ(decoded->counters.size(), live.counters.size());
  for (std::size_t i = 0; i < live.counters.size(); ++i) {
    EXPECT_EQ(decoded->counters[i].first, live.counters[i].first);
    EXPECT_EQ(decoded->counters[i].second, live.counters[i].second)
        << live.counters[i].first;
  }
  ASSERT_EQ(decoded->gauges.size(), live.gauges.size());
  for (std::size_t i = 0; i < live.gauges.size(); ++i) {
    EXPECT_EQ(decoded->gauges[i].first, live.gauges[i].first);
    EXPECT_DOUBLE_EQ(decoded->gauges[i].second, live.gauges[i].second)
        << live.gauges[i].first;
  }
  (*sampler)->Stop();
}

TEST(Sampler, DeltaFramesAreSparse) {
  obs::SamplerOptions options;
  options.period_ms = 1000000;
  auto sampler = obs::MetricsSampler::Start(options);
  ASSERT_TRUE(sampler.ok());

  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("export_test.sparse");
  (*sampler)->SampleOnce();  // Full (schema gained the new counter).
  counter.Increment();
  counter.Increment();
  (*sampler)->SampleOnce();  // Delta: only this counter moved.

  const std::vector<obs::SampleFrame> ring = (*sampler)->Ring();
  const obs::SampleFrame& last = ring.back();
  ASSERT_FALSE(last.full);
  ASSERT_EQ(last.counter_deltas.size(), 1u);
  EXPECT_EQ(last.counter_deltas[0].second, 2);
  // Every tick refreshes the process RSS and lifetime gauges
  // (DESIGN.md §13), so a delta frame may legitimately carry mem.rss_*
  // movement when the process footprint shifts between samples and
  // process.* movement as uptime advances; nothing else may appear.
  ASSERT_GE(ring.size(), 2u);
  const obs::SampleFrame& reference = ring[ring.size() - 2];
  ASSERT_TRUE(reference.full);
  for (const auto& [index, value] : last.gauge_values) {
    ASSERT_LT(index, reference.view.gauges.size());
    const std::string& name = reference.view.gauges[index].first;
    EXPECT_TRUE(name.rfind("mem.rss", 0) == 0 ||
                name.rfind("process.", 0) == 0)
        << "unexpected gauge delta: " << name << " = " << value;
  }
  (*sampler)->Stop();
}

TEST(Sampler, SchemaChangeForcesFullFrame) {
  obs::SamplerOptions options;
  options.period_ms = 1000000;
  auto sampler = obs::MetricsSampler::Start(options);
  ASSERT_TRUE(sampler.ok());

  (*sampler)->SampleOnce();
  // Registering a brand-new metric changes the flattened schema; the
  // next frame must be a full reference frame, not a delta.
  obs::MetricsRegistry::Global()
      .GetCounter("export_test.schema_change_unique")
      .Increment();
  (*sampler)->SampleOnce();
  EXPECT_TRUE((*sampler)->Ring().back().full);
  (*sampler)->Stop();
}

TEST(Sampler, RingStaysBoundedAndDecodable) {
  obs::SamplerOptions options;
  options.period_ms = 1000000;
  options.ring_capacity = 8;
  options.full_every = 4;
  auto sampler = obs::MetricsSampler::Start(options);
  ASSERT_TRUE(sampler.ok());

  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("export_test.ring");
  for (int i = 0; i < 50; ++i) {
    counter.Increment();
    (*sampler)->SampleOnce();
  }
  const std::vector<obs::SampleFrame> ring = (*sampler)->Ring();
  EXPECT_LE(ring.size(), 8u);
  ASSERT_FALSE(ring.empty());
  EXPECT_TRUE(ring.front().full);
  auto decoded = obs::DecodeFrames(ring);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const obs::SampleView live =
      obs::FlattenSnapshot(obs::MetricsRegistry::Global().Snapshot());
  EXPECT_EQ(decoded->counters, live.counters);
  (*sampler)->Stop();
}

TEST(Sampler, DecodeRejectsLeadingDelta) {
  obs::SampleFrame delta;
  delta.full = false;
  EXPECT_FALSE(obs::DecodeFrames({delta}).ok());
}

TEST(Sampler, JsonlFramesAreValidAndStamped) {
  const std::string path = ::testing::TempDir() + "/sampler_test.jsonl";
  std::remove(path.c_str());
  {
    obs::SamplerOptions options;
    options.period_ms = 1000000;
    options.series_path = path;
    options.run_id = "test-run \"quoted\"";
    auto sampler = obs::MetricsSampler::Start(options);
    ASSERT_TRUE(sampler.ok());
    obs::MetricsRegistry::Global()
        .GetCounter("export_test.jsonl")
        .Increment();
    (*sampler)->SampleOnce();
    (*sampler)->Stop();
  }
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < contents.size()) {
    const std::size_t end = contents.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(contents.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GE(lines.size(), 2u);  // Initial full frame + manual sample.
  for (const std::string& line : lines) {
    EXPECT_TRUE(testutil::JsonChecker(line).Valid()) << line;
    EXPECT_NE(line.find("\"run_id\":\"test-run \\\"quoted\\\"\""),
              std::string::npos)
        << line;
  }
  EXPECT_NE(lines[0].find("\"type\":\"full\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
}

// The TSan target: sampler + HTTP server live while many threads write
// metrics. Run under -fsanitize=thread this exercises every
// reader/writer pairing in the export layer.
TEST(Sampler, ConcurrentWithServerAndWriters) {
  obs::SamplerOptions options;
  options.period_ms = 1;
  auto sampler = obs::MetricsSampler::Start(options);
  ASSERT_TRUE(sampler.ok());
  auto server = obs::MetricsHttpServer::Start(0);
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();

  ParallelFor(8, 8, [](std::size_t chunk, std::size_t, std::size_t) {
    obs::Counter& counter =
        obs::MetricsRegistry::Global().GetCounter("export_test.concurrent");
    obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
        "export_test.concurrent_ms", obs::DefaultLatencyBoundsMs());
    for (int i = 0; i < 2000; ++i) {
      counter.Increment();
      hist.Observe(static_cast<double>((chunk * 7 + i) % 900));
    }
  });
  const std::string response =
      HttpGet(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("export_test_concurrent"), std::string::npos);
  (*server)->Stop();
  (*sampler)->Stop();
  auto decoded = obs::DecodeFrames((*sampler)->Ring());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
}

}  // namespace
}  // namespace dd
