#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC 123!"), "abc 123!");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("xy"), "xy");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseDoubleTest, AcceptsValidRejectsInvalid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StrFormatTest, PrintfSemantics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace dd
