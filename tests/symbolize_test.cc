// Tests for the shared PC symbolizer (src/obs/diag/symbolize), factored
// out of the dump reader for the sampling profiler: /proc/<pid>/maps
// parsing against synthetic fixtures (anonymous regions, non-executable
// mappings, truncated lines), the min-bias rebasing rule, and
// own-process symbol resolution through dladdr.

#include "obs/diag/symbolize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace dd {
namespace {

using obs::diag::DiagModule;
using obs::diag::FindModule;
using obs::diag::ModuleBias;
using obs::diag::ParseMapsLine;
using obs::diag::ParseMapsText;
using obs::diag::SelfModules;
using obs::diag::SymbolForAddress;
using obs::diag::SymbolizedPc;
using obs::diag::SymbolizePc;

TEST(ParseMapsLine, FullFileBackedMapping) {
  DiagModule mod;
  ASSERT_TRUE(ParseMapsLine(
      "55e7a1c00000-55e7a1c50000 r-xp 00020000 fd:01 123456 /usr/bin/ddtool",
      &mod));
  EXPECT_EQ(mod.start, 0x55e7a1c00000u);
  EXPECT_EQ(mod.end, 0x55e7a1c50000u);
  EXPECT_EQ(mod.file_offset, 0x20000u);
  EXPECT_TRUE(mod.exec);
  EXPECT_EQ(mod.path, "/usr/bin/ddtool");
}

TEST(ParseMapsLine, AnonymousRegionHasNoPath) {
  DiagModule mod;
  ASSERT_TRUE(
      ParseMapsLine("7f0000000000-7f0000021000 rw-p 00000000 00:00 0", &mod));
  EXPECT_EQ(mod.path, "");
  EXPECT_FALSE(mod.exec);
}

TEST(ParseMapsLine, NonExecutableMapping) {
  DiagModule mod;
  ASSERT_TRUE(ParseMapsLine(
      "55e7a1b00000-55e7a1c00000 r--p 00000000 fd:01 123456 /usr/bin/ddtool",
      &mod));
  EXPECT_FALSE(mod.exec);
}

TEST(ParseMapsLine, TruncatedOrMalformedLinesRejected) {
  DiagModule mod;
  EXPECT_FALSE(ParseMapsLine("", &mod));
  EXPECT_FALSE(ParseMapsLine("bogus", &mod));
  EXPECT_FALSE(ParseMapsLine("55e7a1c00000-55e7a1c50000 r-xp", &mod));
  // Range token without the dash.
  EXPECT_FALSE(ParseMapsLine(
      "55e7a1c00000 r-xp 00000000 fd:01 123456 /usr/bin/ddtool", &mod));
}

TEST(ParseMapsText, SkipsBadLinesKeepsGoodOnes) {
  const std::string text =
      "1000-2000 r-xp 00000000 fd:01 1 /bin/a\n"
      "garbage line\n"
      "3000-4000 rw-p 00001000 fd:01 1 /bin/a\n";
  const std::vector<DiagModule> modules = ParseMapsText(text);
  ASSERT_EQ(modules.size(), 2u);
  EXPECT_EQ(modules[0].start, 0x1000u);
  EXPECT_EQ(modules[1].file_offset, 0x1000u);
}

TEST(FindModule, RangeBoundsAreHalfOpen) {
  const std::vector<DiagModule> modules = ParseMapsText(
      "1000-2000 r-xp 00000000 fd:01 1 /bin/a\n"
      "3000-4000 r-xp 00000000 fd:01 2 /bin/b\n");
  ASSERT_EQ(modules.size(), 2u);
  EXPECT_EQ(FindModule(modules, 0x1000), &modules[0]);  // inclusive start
  EXPECT_EQ(FindModule(modules, 0x1fff), &modules[0]);
  EXPECT_EQ(FindModule(modules, 0x2000), nullptr);  // exclusive end
  EXPECT_EQ(FindModule(modules, 0x2800), nullptr);  // gap
  EXPECT_EQ(FindModule(modules, 0x3000), &modules[1]);
  EXPECT_EQ(FindModule(modules, 0x4000), nullptr);
}

TEST(ModuleBias, MinimumOverSamePathMappings) {
  // Two segments of the same binary: text at base+0x2000 (offset
  // 0x2000) and data at base+0x10000 (offset 0xf000, bias 0x1000
  // higher). The load bias is the minimum start-minus-offset.
  const std::vector<DiagModule> modules = ParseMapsText(
      "402000-450000 r-xp 00002000 fd:01 1 /bin/a\n"
      "410000-420000 rw-p 0000f000 fd:01 1 /bin/a\n");
  EXPECT_EQ(ModuleBias(modules, "/bin/a"), 0x400000u);
  EXPECT_EQ(ModuleBias(modules, "/bin/unknown"), 0u);
}

TEST(SymbolizePc, RebasesAgainstSyntheticCaptureModules) {
  // A dump captured in a process whose /x/libfake.so loaded at
  // 0x7f1234000000; that library is not loaded here, so the symbol
  // stays empty but the module-relative offset is exact.
  const std::vector<DiagModule> capture = ParseMapsText(
      "7f1234000000-7f1234100000 r-xp 00000000 fd:01 9 /x/libfake.so\n");
  const std::vector<DiagModule> own = SelfModules();
  const SymbolizedPc sym = SymbolizePc(0x7f1234000940, capture, own);
  EXPECT_EQ(sym.module, "/x/libfake.so");
  EXPECT_EQ(sym.module_offset, 0x940u);
  EXPECT_EQ(sym.symbol, "");
}

TEST(SymbolizePc, UnmappedPcYieldsNothing) {
  const std::vector<DiagModule> capture =
      ParseMapsText("1000-2000 r-xp 00000000 fd:01 1 /bin/a\n");
  const SymbolizedPc sym = SymbolizePc(0x9000, capture, SelfModules());
  EXPECT_EQ(sym.module, "");
  EXPECT_EQ(sym.symbol, "");
}

TEST(SymbolizePc, OwnProcessIdentityRebaseResolvesKnownFunction) {
  // capture == own: the rebase is the identity, and dladdr must name
  // an exported function of this very test binary (-rdynamic).
  const std::vector<DiagModule> own = SelfModules();
  ASSERT_FALSE(own.empty());
  const auto pc = reinterpret_cast<std::uint64_t>(&obs::diag::SelfModules);
  const SymbolizedPc sym = SymbolizePc(pc, own, own);
  EXPECT_NE(sym.symbol.find("SelfModules"), std::string::npos)
      << "module=" << sym.module << " symbol=" << sym.symbol;
}

TEST(SymbolForAddress, ResolvesAndDemanglesOwnSymbol) {
  const std::string symbol =
      SymbolForAddress(reinterpret_cast<const void*>(&obs::diag::SelfModules));
  EXPECT_NE(symbol.find("SelfModules"), std::string::npos) << symbol;
  // Demangled, not the raw mangled name.
  EXPECT_EQ(symbol.rfind("_Z", 0), std::string::npos) << symbol;
}

}  // namespace
}  // namespace dd
