#include "core/skyline.h"

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "tests/test_util.h"

namespace dd {
namespace {

DeterminedPattern P(double s, double c, double q) {
  DeterminedPattern p;
  p.measures.support = s;
  p.measures.confidence = c;
  p.measures.quality = q;
  return p;
}

TEST(ParetoDominatesTest, StrictAndNonStrictComponents) {
  EXPECT_TRUE(ParetoDominates(P(0.2, 0.5, 0.8).measures,
                              P(0.1, 0.5, 0.8).measures));
  EXPECT_TRUE(ParetoDominates(P(0.2, 0.6, 0.9).measures,
                              P(0.1, 0.5, 0.8).measures));
  // Equal triples dominate in neither direction.
  EXPECT_FALSE(ParetoDominates(P(0.1, 0.5, 0.8).measures,
                               P(0.1, 0.5, 0.8).measures));
  // Trade-offs are incomparable.
  EXPECT_FALSE(ParetoDominates(P(0.3, 0.4, 0.8).measures,
                               P(0.1, 0.5, 0.8).measures));
  EXPECT_FALSE(ParetoDominates(P(0.1, 0.5, 0.8).measures,
                               P(0.3, 0.4, 0.8).measures));
}

TEST(ParetoFrontTest, KeepsOnlyNonDominated) {
  std::vector<DeterminedPattern> patterns = {
      P(0.2, 0.5, 0.8),  // Dominated by the next.
      P(0.3, 0.6, 0.8),
      P(0.1, 0.9, 0.3),  // Incomparable trade-off: survives.
      P(0.05, 0.5, 0.7),  // Dominated by the second.
  };
  auto front = ParetoFront(patterns);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_DOUBLE_EQ(front[0].measures.support, 0.3);
  EXPECT_DOUBLE_EQ(front[1].measures.confidence, 0.9);
}

TEST(ParetoFrontTest, DuplicatesAllSurvive) {
  std::vector<DeterminedPattern> patterns = {P(0.2, 0.5, 0.8),
                                             P(0.2, 0.5, 0.8)};
  EXPECT_EQ(ParetoFront(patterns).size(), 2u);
}

TEST(ParetoFrontTest, EmptyInput) {
  EXPECT_TRUE(ParetoFront({}).empty());
}

// The paper's introduction characterizes the returned pattern as
// Pareto-optimal on (S, C, Q). Strictly, Theorem 1 only covers
// proportionally-scaled dominance, and a dominator whose C·Q sits below
// the prior mean can in principle trade support against shrinkage; in
// practice (and on these fixed instances) the max-Ū pattern sits on the
// Pareto front, which is what this checks.
TEST(SkylineTest, MaxUtilityPatternIsParetoOptimal) {
  for (std::uint64_t seed : {3ull, 7ull, 11ull, 19ull}) {
    MatchingRelation m = testutil::RandomMatching(2, 6, 400, seed);
    RuleSpec rule{{"a0"}, {"a1"}};
    DetermineOptions opts;
    auto result = DetermineThresholds(m, rule, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->patterns.empty());

    // Exhaustively enumerate all candidates with their measures.
    auto resolved = ResolveRule(m, rule);
    ASSERT_TRUE(resolved.ok());
    ScanMeasureProvider provider(m, *resolved);
    std::vector<DeterminedPattern> all;
    for (int x = 0; x <= 6; ++x) {
      for (int y = 0; y <= 6; ++y) {
        DeterminedPattern p;
        p.pattern = Pattern{{x}, {y}};
        p.measures = ComputeMeasures(&provider, p.pattern, 6);
        all.push_back(std::move(p));
      }
    }
    EXPECT_TRUE(IsParetoOptimalAmong(result->patterns.front(), all))
        << "seed " << seed;
  }
}

TEST(SkylineTest, FrontOfExhaustiveSearchContainsTopUtility) {
  MatchingRelation m = testutil::RandomMatching(2, 5, 300, 23);
  RuleSpec rule{{"a0"}, {"a1"}};
  auto resolved = ResolveRule(m, rule);
  ASSERT_TRUE(resolved.ok());
  ScanMeasureProvider provider(m, *resolved);
  UtilityOptions uopts;
  std::vector<DeterminedPattern> all;
  for (int x = 0; x <= 5; ++x) {
    for (int y = 0; y <= 5; ++y) {
      DeterminedPattern p;
      p.pattern = Pattern{{x}, {y}};
      p.measures = ComputeMeasures(&provider, p.pattern, 5);
      p.utility = ExpectedUtility(p.measures.total, p.measures.lhs_count,
                                  p.measures.confidence, p.measures.quality,
                                  uopts);
      all.push_back(std::move(p));
    }
  }
  auto front = ParetoFront(all);
  ASSERT_FALSE(front.empty());
  double best_overall = 0.0;
  for (const auto& p : all) best_overall = std::max(best_overall, p.utility);
  double best_on_front = 0.0;
  for (const auto& p : front) {
    best_on_front = std::max(best_on_front, p.utility);
  }
  EXPECT_DOUBLE_EQ(best_on_front, best_overall);
}

}  // namespace
}  // namespace dd
