#include "core/expected_utility.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dd {
namespace {

constexpr std::uint64_t kM = 100000;  // Matching-relation size.

UtilityOptions DefaultOptions() {
  UtilityOptions opts;
  opts.prior_mean_cq = 0.25;
  opts.prior_strength = 0.05;
  return opts;
}

TEST(ExpectedUtilityTest, ClosedFormMatchesDefinition) {
  // Ū = (D·C·Q + h·μ) / (D + h) in fractions of M.
  UtilityOptions opts = DefaultOptions();
  const std::uint64_t n = 40000;  // D = 0.4
  const double c = 0.75;
  const double q = 0.8;
  const double expected =
      (0.4 * c * q + 0.05 * 0.25) / (0.4 + 0.05);
  EXPECT_NEAR(ExpectedUtility(kM, n, c, q, opts), expected, 1e-12);
}

TEST(ExpectedUtilityTest, InUnitInterval) {
  UtilityOptions opts = DefaultOptions();
  for (std::uint64_t n : {0ull, 1ull, 10ull, 1000ull, 100000ull}) {
    for (double c : {0.0, 0.3, 1.0}) {
      for (double q : {0.0, 0.5, 1.0}) {
        double u = ExpectedUtility(kM, n, c, q, opts);
        EXPECT_GE(u, 0.0) << n << "," << c << "," << q;
        EXPECT_LE(u, 1.0) << n << "," << c << "," << q;
      }
    }
  }
}

TEST(ExpectedUtilityTest, ZeroSupportGivesPriorMean) {
  UtilityOptions opts = DefaultOptions();
  EXPECT_NEAR(ExpectedUtility(kM, 0, 0.0, 1.0, opts), 0.25, 1e-12);
  EXPECT_NEAR(ExpectedUtility(0, 0, 0.0, 1.0, opts), 0.25, 1e-12);
}

TEST(ExpectedUtilityTest, FullSupportApproachesCq) {
  // D = 1 with weak prior: Ū close to C·Q.
  UtilityOptions opts = DefaultOptions();
  opts.prior_strength = 0.01;
  double u = ExpectedUtility(kM, kM, 0.8, 0.75, opts);  // CQ = 0.6
  EXPECT_NEAR(u, 0.6, 0.01);
  // h = 0 degenerates exactly to the MLE.
  opts.prior_strength = 0.0;
  EXPECT_NEAR(ExpectedUtility(kM, kM, 0.8, 0.75, opts), 0.6, 1e-12);
}

TEST(ExpectedUtilityTest, Theorem2MonotoneInCqAtFixedD) {
  UtilityOptions opts = DefaultOptions();
  const std::uint64_t n = 5000;
  double prev = -1.0;
  for (double cq = 0.0; cq <= 1.0001; cq += 0.05) {
    double u = ExpectedUtility(kM, n, cq, 1.0, opts);
    EXPECT_GT(u, prev) << "cq=" << cq;
    prev = u;
  }
}

TEST(ExpectedUtilityTest, SymmetricInConfidenceAndQuality) {
  UtilityOptions opts = DefaultOptions();
  double a = ExpectedUtility(kM, 1000, 0.8, 0.5, opts);
  double b = ExpectedUtility(kM, 1000, 0.5, 0.8, opts);
  double c = ExpectedUtility(kM, 1000, 0.4, 1.0, opts);
  EXPECT_NEAR(a, b, 1e-12);
  EXPECT_NEAR(a, c, 1e-12);
}

TEST(ExpectedUtilityTest, LowSupportHighConfidencePatternsLose) {
  // The Table III shape: the FD has C·Q = 0.36 on a sliver of support
  // and must score below a broad pattern with C·Q = 0.30.
  UtilityOptions opts = DefaultOptions();
  opts.prior_mean_cq = 0.1;
  const double fd = ExpectedUtility(kM, kM / 56, 0.3595, 1.0, opts);
  const double dd = ExpectedUtility(kM, kM * 2 / 5, 0.376, 0.8, opts);
  EXPECT_GT(dd, fd);
}

TEST(ExpectedUtilityTest, ReproducesTableIIIRanking) {
  // The six patterns + FD of the paper's Table III, as (D, C, Q). The
  // shrinkage posterior mean must reproduce the published Ū ordering,
  // including the ϕ1/ϕ2 inversion (lower S but higher C wins).
  UtilityOptions opts = DefaultOptions();
  opts.prior_mean_cq = 0.1;
  struct Row {
    double s, c, q;
  };
  const Row rows[] = {
      {0.1529, 0.3760, 0.80},  // ϕ1
      {0.1764, 0.3667, 0.80},  // ϕ2
      {0.1632, 0.3774, 0.75},  // ϕ3
      {0.1657, 0.3657, 0.75},  // ϕ4
      {0.1529, 0.3852, 0.70},  // ϕ5
      {0.1764, 0.3985, 0.65},  // ϕ6
      {0.0064, 0.3595, 1.00},  // fd
  };
  double prev = 2.0;
  for (const Row& r : rows) {
    const double d = r.s / r.c;
    const auto n = static_cast<std::uint64_t>(d * kM);
    const double u = ExpectedUtility(kM, n, r.c, r.q, opts);
    EXPECT_LT(u, prev) << "row (" << r.s << "," << r.c << "," << r.q << ")";
    prev = u;
  }
}

TEST(ExpectedUtilityTest, Theorem1Exactly) {
  // S1/S2 = ρ >= 1, C1 >= ρ C2, Q1 >= Q2/ρ  ⇒  Ū1 >= Ū2.
  UtilityOptions opts = DefaultOptions();
  for (double rho : {1.0, 1.3, 2.0}) {
    for (double s2 : {0.05, 0.2, 0.4}) {
      for (double c2 : {0.2, 0.45}) {
        for (double q2 : {0.4, 0.9}) {
          // Strictly exceed the theorem's minimum requirements so the
          // comparison is non-vacuous (C1 > ρC2, Q1 > Q2/ρ).
          const double s1 = s2 * rho;
          const double c1 = std::min(0.99, c2 * rho * 1.1);
          const double q1 = std::min(1.0, q2 / rho * 1.05);
          const double d1 = s1 / c1;
          const double d2 = s2 / c2;
          if (d1 > 1.0 || d2 > 1.0) continue;
          const double u1 = ExpectedUtility(
              kM, static_cast<std::uint64_t>(d1 * kM), c1, q1, opts);
          const double u2 = ExpectedUtility(
              kM, static_cast<std::uint64_t>(d2 * kM), c2, q2, opts);
          EXPECT_GE(u1, u2 - 1e-9)
              << rho << "," << s2 << "," << c2 << "," << q2;
        }
      }
    }
  }
}

TEST(ExpectedUtilityTest, Theorem3BoundHoldsExactly) {
  // D1 >= D2 and CQ2 <= 1 - (D1/D2)(1 - CQ1)  ⇒  Ū1 >= Ū2 — the DAP
  // advanced pruning bound (formula 6).
  UtilityOptions opts = DefaultOptions();
  for (double d1 : {0.3, 0.6, 0.9}) {
    for (double d2 : {0.1, 0.3, 0.6}) {
      if (d2 > d1) continue;
      for (double cq1 : {0.5, 0.8, 0.95}) {
        const double ratio = d1 / d2;
        const double bound = 1.0 - ratio * (1.0 - cq1);
        if (bound <= 0.0) continue;
        const double u1 = ExpectedUtility(
            kM, static_cast<std::uint64_t>(d1 * kM), cq1, 1.0, opts);
        for (double f : {0.0, 0.5, 1.0}) {
          const double cq2 = bound * f;
          const double u2 = ExpectedUtility(
              kM, static_cast<std::uint64_t>(d2 * kM), cq2, 1.0, opts);
          EXPECT_LE(u2, u1 + 1e-9)
              << "d1=" << d1 << " d2=" << d2 << " cq1=" << cq1
              << " cq2=" << cq2;
        }
      }
    }
  }
}

TEST(ExpectedUtilityTest, PriorShiftsLowSupportResults) {
  UtilityOptions low = DefaultOptions();
  low.prior_mean_cq = 0.05;
  UtilityOptions high = DefaultOptions();
  high.prior_mean_cq = 0.95;
  // Low support: prior matters.
  EXPECT_LT(ExpectedUtility(kM, 30, 0.5, 1.0, low),
            ExpectedUtility(kM, 30, 0.5, 1.0, high));
  // High support: prior washes out (but not entirely, h > 0).
  const double diff = ExpectedUtility(kM, kM, 0.5, 1.0, high) -
                      ExpectedUtility(kM, kM, 0.5, 1.0, low);
  EXPECT_LT(diff, 0.1);
  EXPECT_GE(diff, 0.0);
}

TEST(ExpectedUtilityTest, NumericIntegrationMatchesClosedForm) {
  UtilityOptions closed = DefaultOptions();
  UtilityOptions numeric = DefaultOptions();
  numeric.method = UtilityMethod::kNumericIntegration;
  numeric.integration_intervals = 2048;
  for (std::uint64_t n : {100ull, 5000ull, 60000ull}) {
    for (double c : {0.1, 0.5, 0.9}) {
      for (double q : {0.3, 1.0}) {
        const double a = ExpectedUtility(kM, n, c, q, closed);
        const double b = ExpectedUtility(kM, n, c, q, numeric);
        EXPECT_NEAR(a, b, 1e-4) << n << "," << c << "," << q;
      }
    }
  }
}

TEST(EstimatePriorMeanCqTest, DeterministicAndInRange) {
  MatchingRelation m = testutil::RandomMatching(2, 8, 400, 5);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  double a = EstimatePriorMeanCq(&provider, 1, 1, 8, 50, 7);
  double b = EstimatePriorMeanCq(&provider, 1, 1, 8, 50, 7);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
  double c = EstimatePriorMeanCq(&provider, 1, 1, 8, 50, 8);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

}  // namespace
}  // namespace dd
