#include "data/generators.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "metric/metric.h"

namespace dd {
namespace {

TEST(HotelExampleTest, MatchesPaperTableI) {
  GeneratedData hotel = HotelExample();
  ASSERT_EQ(hotel.relation.num_rows(), 6u);
  EXPECT_EQ(hotel.relation.schema().ToString(),
            "Name:string, Address:string, Region:string");
  EXPECT_EQ(hotel.relation.at(0, 0), "West Wood Hotel");
  EXPECT_EQ(hotel.relation.at(5, 2), "Chicago, MA");
  EXPECT_EQ(hotel.entity_ids, (std::vector<std::size_t>{0, 0, 0, 1, 1, 1}));
  // t5 and t6 agree exactly on Address — the FD violation of the intro.
  EXPECT_EQ(hotel.relation.at(4, 1), hotel.relation.at(5, 1));
}

template <typename Options, typename Generator>
void CheckBasicShape(Generator generate, Options options,
                     std::size_t num_attrs) {
  options.num_entities = 20;
  GeneratedData data = generate(options);
  EXPECT_EQ(data.relation.num_attributes(), num_attrs);
  EXPECT_EQ(data.entity_ids.size(), data.relation.num_rows());
  // Every entity produced between min and max duplicates.
  std::unordered_map<std::size_t, std::size_t> sizes;
  for (std::size_t e : data.entity_ids) ++sizes[e];
  EXPECT_EQ(sizes.size(), options.num_entities);
  for (const auto& [entity, count] : sizes) {
    EXPECT_GE(count, options.min_duplicates);
    EXPECT_LE(count, options.max_duplicates);
  }
}

TEST(CoraGeneratorTest, BasicShape) {
  CheckBasicShape(GenerateCora, CoraOptions{}, 7u);
}

TEST(RestaurantGeneratorTest, BasicShape) {
  CheckBasicShape(GenerateRestaurant, RestaurantOptions{}, 4u);
}

TEST(CiteseerGeneratorTest, BasicShape) {
  CheckBasicShape(GenerateCiteseer, CiteseerOptions{}, 4u);
}

TEST(CoraGeneratorTest, DeterministicGivenSeed) {
  CoraOptions opts;
  opts.num_entities = 10;
  GeneratedData a = GenerateCora(opts);
  GeneratedData b = GenerateCora(opts);
  ASSERT_EQ(a.relation.num_rows(), b.relation.num_rows());
  for (std::size_t r = 0; r < a.relation.num_rows(); ++r) {
    EXPECT_EQ(a.relation.row(r), b.relation.row(r));
  }
}

TEST(CoraGeneratorTest, SeedsChangeOutput) {
  CoraOptions a_opts;
  a_opts.num_entities = 10;
  CoraOptions b_opts = a_opts;
  b_opts.seed = a_opts.seed + 1;
  GeneratedData a = GenerateCora(a_opts);
  GeneratedData b = GenerateCora(b_opts);
  bool any_diff = a.relation.num_rows() != b.relation.num_rows();
  for (std::size_t r = 0; !any_diff && r < a.relation.num_rows(); ++r) {
    any_diff = a.relation.row(r) != b.relation.row(r);
  }
  EXPECT_TRUE(any_diff);
}

// Within-entity title distances should be much smaller than
// across-entity ones: the structure the dependency mining relies on.
TEST(CoraGeneratorTest, WithinEntityTitlesCloserThanAcross) {
  CoraOptions opts;
  opts.num_entities = 30;
  GeneratedData data = GenerateCora(opts);
  LevenshteinMetric lev;
  const std::size_t title = 1;
  double within_sum = 0.0;
  double across_sum = 0.0;
  std::size_t within_n = 0;
  std::size_t across_n = 0;
  const std::size_t n = data.relation.num_rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n && across_n < 4000; ++j) {
      double d = lev.Distance(data.relation.at(i, title),
                              data.relation.at(j, title));
      if (data.entity_ids[i] == data.entity_ids[j]) {
        within_sum += d;
        ++within_n;
      } else {
        across_sum += d;
        ++across_n;
      }
    }
  }
  ASSERT_GT(within_n, 0u);
  ASSERT_GT(across_n, 0u);
  EXPECT_LT(within_sum / within_n, 0.5 * across_sum / across_n);
}

// Restaurant type must be independent of the entity (the Table IV
// independence finding): within-entity type agreement should be close
// to the baseline rate of two random draws agreeing.
TEST(RestaurantGeneratorTest, TypeIsIndependentOfEntity) {
  RestaurantOptions opts;
  opts.num_entities = 200;
  GeneratedData data = GenerateRestaurant(opts);
  const std::size_t type = 3;
  std::size_t agree = 0;
  std::size_t total = 0;
  const std::size_t n = data.relation.num_rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (data.entity_ids[i] != data.entity_ids[j]) continue;
      ++total;
      if (data.relation.at(i, type) == data.relation.at(j, type)) ++agree;
    }
  }
  ASSERT_GT(total, 100u);
  // 10 uniform types -> ~10% agreement; far below a dependent attribute.
  EXPECT_LT(static_cast<double>(agree) / total, 0.3);
}

// Cora venues functionally determine address/publisher/editor (the
// clean Rule 2 dependency): records with near-identical venue strings
// must have similar publisher strings, up to format perturbation.
TEST(CoraGeneratorTest, VenueDeterminesPublisherUpToNoise) {
  CoraOptions opts;
  opts.num_entities = 60;
  GeneratedData data = GenerateCora(opts);
  LevenshteinMetric lev;
  const std::size_t venue = 2;
  const std::size_t publisher = 5;
  const std::size_t n = data.relation.num_rows();
  double max_publisher_gap = 0.0;
  std::size_t close_venue_pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (lev.BoundedDistance(data.relation.at(i, venue),
                              data.relation.at(j, venue), 2.0) > 2.0) {
        continue;
      }
      ++close_venue_pairs;
      max_publisher_gap = std::max(
          max_publisher_gap, lev.Distance(data.relation.at(i, publisher),
                                          data.relation.at(j, publisher)));
    }
  }
  ASSERT_GT(close_venue_pairs, 10u);
  // Same venue (distance <= 2 can only be format noise on these long
  // strings) implies the same canonical publisher; perturbation (typos,
  // abbreviation, a dropped token) keeps the pair within a modest edit
  // radius.
  EXPECT_LE(max_publisher_gap, 20.0);
}

// Citeseer subject is entity-determined: same-entity subjects agree up
// to light format noise (case/typos keep them within small distance).
TEST(CiteseerGeneratorTest, SubjectDependsOnEntity) {
  CiteseerOptions opts;
  opts.num_entities = 50;
  GeneratedData data = GenerateCiteseer(opts);
  LevenshteinMetric lev;
  const std::size_t subject = 3;
  const std::size_t n = data.relation.num_rows();
  double max_within = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (data.entity_ids[i] != data.entity_ids[j]) continue;
      max_within = std::max(max_within,
                            lev.Distance(data.relation.at(i, subject),
                                         data.relation.at(j, subject)));
    }
  }
  EXPECT_LT(max_within, 10.0);
}

}  // namespace
}  // namespace dd
