#include "data/perturb.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "metric/metric.h"

namespace dd {
namespace {

TEST(PerturbTest, AbbreviationsFireWithProbabilityOne) {
  TextPerturber p;
  Rng rng(1);
  std::string out = p.ApplyAbbreviations("Fifth Avenue", 1.0, &rng);
  EXPECT_EQ(out, "5th Ave.");
}

TEST(PerturbTest, AbbreviationsNeverFireWithProbabilityZero) {
  TextPerturber p;
  Rng rng(1);
  EXPECT_EQ(p.ApplyAbbreviations("Fifth Avenue", 0.0, &rng), "Fifth Avenue");
}

TEST(PerturbTest, CustomDictionary) {
  std::vector<std::pair<std::string, std::string>> dict = {{"Hello", "Hi"}};
  TextPerturber p(dict);
  Rng rng(2);
  EXPECT_EQ(p.ApplyAbbreviations("Hello World", 1.0, &rng), "Hi World");
}

TEST(PerturbTest, TyposChangeStringBoundedly) {
  Rng rng(3);
  LevenshteinMetric lev;
  for (int i = 0; i < 50; ++i) {
    std::string out = TextPerturber::ApplyTypos("edit distance target", 2.0, &rng);
    // Each edit changes Levenshtein distance by at most 1; with mean 2.0
    // the draw is at most 3 edits (floor(2) + Bernoulli).
    EXPECT_LE(lev.Distance("edit distance target", out), 3.0);
  }
}

TEST(PerturbTest, ZeroTyposIsIdentity) {
  Rng rng(4);
  EXPECT_EQ(TextPerturber::ApplyTypos("unchanged", 0.0, &rng), "unchanged");
}

TEST(PerturbTest, DropTokenRemovesExactlyOne) {
  Rng rng(5);
  std::string out = TextPerturber::DropToken("one two three", &rng);
  EXPECT_EQ(SplitWhitespace(out).size(), 2u);
}

TEST(PerturbTest, DropTokenKeepsSingleton) {
  Rng rng(6);
  EXPECT_EQ(TextPerturber::DropToken("solo", &rng), "solo");
}

TEST(PerturbTest, StripPunctuation) {
  EXPECT_EQ(TextPerturber::StripPunctuation("No.3, West Lake Rd."),
            "No3 West Lake Rd");
}

TEST(PerturbTest, PerturbIsDeterministicGivenSeed) {
  TextPerturber p;
  PerturbOptions opts;
  Rng a(77);
  Rng b(77);
  EXPECT_EQ(p.Perturb("Fifth Avenue, 61st Street", opts, &a),
            p.Perturb("Fifth Avenue, 61st Street", opts, &b));
}

TEST(PerturbTest, PerturbedValuesStayClose) {
  TextPerturber p;
  PerturbOptions opts;  // Defaults: mild noise.
  Rng rng(88);
  LevenshteinMetric lev;
  const std::string canonical = "Proceedings of the International Conference";
  double total = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    total += lev.Distance(canonical, p.Perturb(canonical, opts, &rng));
  }
  // Mild defaults keep variants within a small edit radius on average —
  // the property the generators rely on for within-entity similarity.
  EXPECT_LT(total / n, 15.0);
}

}  // namespace
}  // namespace dd
