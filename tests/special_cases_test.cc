#include "core/special_cases.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dd {
namespace {

TEST(MfdTest, LhsPinnedToEquality) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 300, 11);
  RuleSpec rule{{"a0"}, {"a1"}};
  SpecialCaseOptions options;
  options.top_l = 3;
  auto result = DetermineMfdThresholds(m, rule, options);
  ASSERT_TRUE(result.ok());
  for (const auto& p : result->patterns) {
    EXPECT_EQ(p.pattern.lhs, (Levels{0}));
  }
  // Only C_Y was explored.
  EXPECT_EQ(result->stats.lhs_total, 1u);
  EXPECT_LE(result->stats.rhs.lattice_size, 7u);
}

TEST(MfdTest, MatchesFullDeterminerAtFixedLhs) {
  // The MFD answer equals the best CQ over C_Y at ϕ[X] = 0 — verify
  // against FindBestRhs directly.
  MatchingRelation m = testutil::RandomMatching(2, 6, 400, 13);
  ResolvedRule resolved{{0}, {1}};
  ScanMeasureProvider provider(m, resolved);
  provider.SetLhs({0});
  PaOptions pa;
  auto reference = FindBestRhs(&provider, 1, 6, 0.0, pa, nullptr);

  RuleSpec rule{{"a0"}, {"a1"}};
  SpecialCaseOptions options;
  options.prior_sample_size = 0;  // Deterministic utility options.
  auto result = DetermineMfdThresholds(m, rule, options);
  ASSERT_TRUE(result.ok());
  if (reference.empty()) {
    EXPECT_TRUE(result->patterns.empty());
  } else {
    ASSERT_FALSE(result->patterns.empty());
    const auto& best = result->patterns.front();
    EXPECT_NEAR(best.measures.confidence * best.measures.quality,
                reference.front().cq, 1e-12);
  }
}

TEST(MfdTest, PrunedAndExhaustiveAgree) {
  MatchingRelation m = testutil::RandomMatching(3, 5, 300, 17);
  RuleSpec rule{{"a0"}, {"a1", "a2"}};
  SpecialCaseOptions pruned;
  pruned.prune = true;
  SpecialCaseOptions exhaustive;
  exhaustive.prune = false;
  auto a = DetermineMfdThresholds(m, rule, pruned);
  auto b = DetermineMfdThresholds(m, rule, exhaustive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->patterns.size(), b->patterns.size());
  if (!a->patterns.empty()) {
    EXPECT_NEAR(a->patterns[0].utility, b->patterns[0].utility, 1e-9);
  }
}

TEST(MdTest, RhsPinnedToEquality) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 300, 19);
  RuleSpec rule{{"a0"}, {"a1"}};
  SpecialCaseOptions options;
  options.top_l = 4;
  auto result = DetermineMdThresholds(m, rule, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  for (const auto& p : result->patterns) {
    EXPECT_EQ(p.pattern.rhs, (Levels{0}));
    EXPECT_DOUBLE_EQ(p.measures.quality, 1.0);
  }
  // Descending utility.
  for (std::size_t i = 1; i < result->patterns.size(); ++i) {
    EXPECT_GE(result->patterns[i - 1].utility, result->patterns[i].utility);
  }
  // Every C_X candidate was evaluated.
  EXPECT_EQ(result->stats.lhs_evaluated, 7u);
}

TEST(MdTest, FindsSelectiveLhsOnStructuredData) {
  // Construct data where x <= 2 implies y == 0, and larger x mixes.
  std::vector<std::vector<Level>> rows;
  for (int i = 0; i < 60; ++i) rows.push_back({1, 0});
  for (int i = 0; i < 40; ++i)
    rows.push_back({5, static_cast<Level>(1 + (i % 5))});
  MatchingRelation m = testutil::MakeMatching({"x", "y"}, 6, rows);
  RuleSpec rule{{"x"}, {"y"}};
  SpecialCaseOptions options;
  options.utility.prior_mean_cq = 0.2;
  options.prior_sample_size = 0;
  auto result = DetermineMdThresholds(m, rule, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // The best matching rule should keep x in [1, 4]: confidence 1.0 at
  // D = 0.6 beats both the tiny-D x<1 and the diluted x>=5.
  EXPECT_GE(result->patterns[0].pattern.lhs[0], 1);
  EXPECT_LT(result->patterns[0].pattern.lhs[0], 5);
  EXPECT_DOUBLE_EQ(result->patterns[0].measures.confidence, 1.0);
}

TEST(SpecialCasesTest, RejectsBadInput) {
  MatchingRelation m = testutil::RandomMatching(2, 5, 50, 3);
  SpecialCaseOptions options;
  EXPECT_FALSE(DetermineMfdThresholds(m, {{"nope"}, {"a1"}}, options).ok());
  EXPECT_FALSE(DetermineMdThresholds(m, {{"a0"}, {}}, options).ok());
  options.top_l = 0;
  EXPECT_FALSE(DetermineMfdThresholds(m, {{"a0"}, {"a1"}}, options).ok());
}

}  // namespace
}  // namespace dd
