#include "core/determiner.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dd {
namespace {

TEST(DeterminerTest, HotelRunningExample) {
  MatchingRelation m = testutil::HotelMatching(10);
  RuleSpec rule{{"Address"}, {"Region"}};
  DetermineOptions opts;
  opts.top_l = 3;
  auto result = DetermineThresholds(m, rule, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  const auto& best = result->patterns.front();
  // The determined pattern must be sensible: positive support,
  // confidence and quality, utility in (0, 1].
  EXPECT_GT(best.measures.support, 0.0);
  EXPECT_GT(best.measures.confidence, 0.0);
  EXPECT_GT(best.measures.quality, 0.0);
  EXPECT_GT(best.utility, 0.0);
  EXPECT_LE(best.utility, 1.0);
  // Descending utility ordering.
  for (std::size_t i = 1; i < result->patterns.size(); ++i) {
    EXPECT_GE(result->patterns[i - 1].utility, result->patterns[i].utility);
  }
  EXPECT_GT(result->elapsed_seconds, 0.0);
  EXPECT_GE(result->prior_mean_cq, 0.0);
  EXPECT_LE(result->prior_mean_cq, 1.0);
}

TEST(DeterminerTest, AllAlgorithmCombinationsAgree) {
  MatchingRelation m = testutil::RandomMatching(3, 6, 400, 999);
  RuleSpec rule{{"a0", "a1"}, {"a2"}};
  double reference = -1.0;
  for (LhsAlgorithm lhs : {LhsAlgorithm::kDa, LhsAlgorithm::kDap}) {
    for (RhsAlgorithm rhs : {RhsAlgorithm::kPa, RhsAlgorithm::kPap}) {
      DetermineOptions opts;
      opts.lhs_algorithm = lhs;
      opts.rhs_algorithm = rhs;
      auto result = DetermineThresholds(m, rule, opts);
      ASSERT_TRUE(result.ok());
      ASSERT_FALSE(result->patterns.empty());
      if (reference < 0.0) {
        reference = result->patterns[0].utility;
      } else {
        EXPECT_NEAR(result->patterns[0].utility, reference, 1e-9)
            << LhsAlgorithmName(lhs) << "+" << RhsAlgorithmName(rhs);
      }
    }
  }
}

TEST(DeterminerTest, GridProviderMatchesScanProvider) {
  MatchingRelation m = testutil::RandomMatching(2, 8, 300, 321);
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions scan_opts;
  scan_opts.provider = "scan";
  DetermineOptions grid_opts;
  grid_opts.provider = "grid";
  auto scan = DetermineThresholds(m, rule, scan_opts);
  auto grid = DetermineThresholds(m, rule, grid_opts);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(grid.ok());
  ASSERT_FALSE(scan->patterns.empty());
  ASSERT_FALSE(grid->patterns.empty());
  EXPECT_NEAR(scan->patterns[0].utility, grid->patterns[0].utility, 1e-9);
  EXPECT_EQ(scan->patterns[0].measures.xy_count,
            grid->patterns[0].measures.xy_count);
}

TEST(DeterminerTest, RejectsInvalidInputs) {
  MatchingRelation m = testutil::RandomMatching(2, 5, 50, 3);
  DetermineOptions opts;
  // Unknown attribute.
  EXPECT_FALSE(DetermineThresholds(m, {{"nope"}, {"a1"}}, opts).ok());
  // Empty side.
  EXPECT_FALSE(DetermineThresholds(m, {{}, {"a1"}}, opts).ok());
  // Attribute on both sides.
  EXPECT_FALSE(DetermineThresholds(m, {{"a0"}, {"a0"}}, opts).ok());
  // Bad provider.
  opts.provider = "bogus";
  EXPECT_FALSE(DetermineThresholds(m, {{"a0"}, {"a1"}}, opts).ok());
  // top_l = 0.
  DetermineOptions zero;
  zero.top_l = 0;
  EXPECT_FALSE(DetermineThresholds(m, {{"a0"}, {"a1"}}, zero).ok());
}

TEST(DeterminerTest, TopLReturnsRequestedCount) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 300, 42);
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions opts;
  opts.top_l = 5;
  auto result = DetermineThresholds(m, rule, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->patterns.size(), 5u);
  EXPECT_GE(result->patterns.size(), 1u);
}

TEST(DeterminerTest, ManualPriorRespected) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 200, 7);
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions opts;
  opts.prior_sample_size = 0;  // Keep the manual prior.
  opts.utility.prior_mean_cq = 0.123;
  auto result = DetermineThresholds(m, rule, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->prior_mean_cq, 0.123);
}

TEST(DeterminerTest, StatsReflectConfiguration) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 200, 8);
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions pa_opts;
  pa_opts.lhs_algorithm = LhsAlgorithm::kDa;
  pa_opts.rhs_algorithm = RhsAlgorithm::kPa;
  auto pa = DetermineThresholds(m, rule, pa_opts);
  ASSERT_TRUE(pa.ok());
  // PA evaluates the complete lattice for every LHS: 7 * 7 = 49.
  EXPECT_EQ(pa->stats.rhs.lattice_size, 49u);
  EXPECT_EQ(pa->stats.rhs.evaluated, 49u);
  EXPECT_DOUBLE_EQ(pa->stats.PruningRate(), 0.0);

  DetermineOptions pap_opts;
  pap_opts.lhs_algorithm = LhsAlgorithm::kDap;
  pap_opts.rhs_algorithm = RhsAlgorithm::kPap;
  auto pap = DetermineThresholds(m, rule, pap_opts);
  ASSERT_TRUE(pap.ok());
  EXPECT_LT(pap->stats.rhs.evaluated, pa->stats.rhs.evaluated);
  EXPECT_GT(pap->stats.PruningRate(), 0.0);
}

TEST(DeterminerTest, AlgorithmNames) {
  EXPECT_STREQ(LhsAlgorithmName(LhsAlgorithm::kDa), "DA");
  EXPECT_STREQ(LhsAlgorithmName(LhsAlgorithm::kDap), "DAP");
  EXPECT_STREQ(RhsAlgorithmName(RhsAlgorithm::kPa), "PA");
  EXPECT_STREQ(RhsAlgorithmName(RhsAlgorithm::kPap), "PAP");
}

}  // namespace
}  // namespace dd
