// Invariant tests for the worker-pool stats collector
// (src/obs/pool_stats.h) over real ParallelFor executions: chunk
// accounting matches EffectiveChunks, busy+wait never exceeds the
// invocation wall, the recorded shape is identical at every thread
// count, and recording never perturbs determination output
// (DESIGN.md §12's bit-identity contract).

#include "obs/pool_stats.h"

#include <atomic>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/determiner.h"
#include "core/result_io.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "matching/builder.h"

namespace dd {
namespace {

obs::PoolStatsCollector& Collector() {
  return obs::PoolStatsCollector::Global();
}

// Finds a phase in the snapshot; nullptr when absent.
const obs::PoolPhaseStats* FindPhase(const obs::PoolStatsSnapshot& snapshot,
                                     const std::string& name) {
  for (const obs::PoolPhaseStats& phase : snapshot.phases) {
    if (phase.phase == name) return &phase;
  }
  return nullptr;
}

TEST(PoolStatsTest, DisabledRecordsNothing) {
  Collector().Disable();
  Collector().Reset();
  std::atomic<std::size_t> items{0};
  ParallelFor("pool_test.disabled", 100, 4,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                items += end - begin;
              });
  EXPECT_EQ(items.load(), 100u);
  const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
  EXPECT_EQ(FindPhase(snapshot, "pool_test.disabled"), nullptr);
}

TEST(PoolStatsTest, ChunkAccountingMatchesEffectiveChunks) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{7}}) {
    Collector().Enable();
    Collector().Reset();
    constexpr std::size_t kCount = 103;
    std::atomic<std::size_t> items{0};
    ParallelFor("pool_test.accounting", kCount, threads,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  items += end - begin;
                });
    const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
    Collector().Disable();
    ASSERT_EQ(items.load(), kCount);

    const obs::PoolPhaseStats* phase =
        FindPhase(snapshot, "pool_test.accounting");
    ASSERT_NE(phase, nullptr) << "threads=" << threads;
    EXPECT_EQ(phase->invocations, 1u) << "threads=" << threads;
    EXPECT_EQ(phase->items, kCount) << "threads=" << threads;
    EXPECT_EQ(phase->chunks, EffectiveChunks(kCount, threads))
        << "threads=" << threads;

    // Per-worker chunk counts partition the invocation's chunks.
    std::uint64_t worker_chunks = 0;
    std::uint64_t worker_items = 0;
    for (const obs::PoolWorkerStats& worker : phase->workers) {
      worker_chunks += worker.chunks;
      worker_items += worker.items;
    }
    EXPECT_EQ(worker_chunks, phase->chunks) << "threads=" << threads;
    EXPECT_EQ(worker_items, phase->items) << "threads=" << threads;

    // The timeline carries one record per chunk, with exact extents.
    std::size_t timeline_chunks = 0;
    std::size_t timeline_items = 0;
    for (const obs::PoolChunkRecord& record : snapshot.timeline) {
      if (record.phase != "pool_test.accounting") continue;
      ++timeline_chunks;
      timeline_items += record.end - record.begin;
      EXPECT_LE(record.begin, record.end);
      EXPECT_LE(record.start_ns, record.end_ns);
    }
    EXPECT_EQ(timeline_chunks, phase->chunks) << "threads=" << threads;
    EXPECT_EQ(timeline_items, kCount) << "threads=" << threads;
  }
}

TEST(PoolStatsTest, BusyPlusWaitBoundedByWall) {
  Collector().Enable();
  Collector().Reset();
  // Enough work per item that busy times are non-trivial.
  std::atomic<std::uint64_t> sink{0};
  for (int repeat = 0; repeat < 3; ++repeat) {
    ParallelFor("pool_test.busywait", 64, 4,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  std::uint64_t local = 0;
                  for (std::size_t i = begin; i < end; ++i) {
                    for (std::uint64_t k = 0; k < 5000; ++k) {
                      local += i * k + 1;
                    }
                  }
                  sink += local;
                });
  }
  const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
  Collector().Disable();
  const obs::PoolPhaseStats* phase = FindPhase(snapshot, "pool_test.busywait");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->invocations, 3u);
  EXPECT_GT(phase->busy_ns, 0u);
  // Every worker's busy + wait is bounded by the phase's summed
  // invocation wall time: wait is computed per participated invocation
  // as wall − busy-in-that-invocation (clamped at 0).
  for (const obs::PoolWorkerStats& worker : phase->workers) {
    EXPECT_LE(worker.busy_ns + worker.wait_ns, phase->wall_ns)
        << "slot=" << worker.slot;
  }
  // Busy time can never exceed chunks' share of wall summed across
  // workers times the wall itself; the speedup bound is >= 1 whenever
  // any work was recorded.
  EXPECT_GE(phase->SpeedupBound(), 1.0);
  EXPECT_GE(phase->ImbalancePercent(), 0.0);
  EXPECT_LE(phase->ImbalancePercent(), 100.0);
  EXPECT_GE(phase->CallerShare(), 0.0);
  EXPECT_LE(phase->CallerShare(), 1.0);
}

TEST(PoolStatsTest, ShapeIdenticalAcrossThreadCounts) {
  // The event-stream shape (phases present, invocation and item
  // totals) must not depend on the thread count — only chunk counts
  // do, and those follow EffectiveChunks deterministically.
  struct Shape {
    std::uint64_t invocations;
    std::uint64_t items;
  };
  std::vector<Shape> shapes;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{7}}) {
    Collector().Enable();
    Collector().Reset();
    for (int i = 0; i < 4; ++i) {
      ParallelFor("pool_test.shape", 50, threads,
                  [&](std::size_t, std::size_t, std::size_t) {});
    }
    const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
    Collector().Disable();
    const obs::PoolPhaseStats* phase = FindPhase(snapshot, "pool_test.shape");
    ASSERT_NE(phase, nullptr) << "threads=" << threads;
    EXPECT_EQ(phase->chunks, 4 * EffectiveChunks(50, threads))
        << "threads=" << threads;
    shapes.push_back({phase->invocations, phase->items});
  }
  ASSERT_EQ(shapes.size(), 3u);
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    EXPECT_EQ(shapes[i].invocations, shapes[0].invocations);
    EXPECT_EQ(shapes[i].items, shapes[0].items);
  }
}

TEST(PoolStatsTest, NestedParallelForNotDoubleCounted) {
  Collector().Enable();
  Collector().Reset();
  // A nested ParallelFor inside a chunk runs inline and must not
  // produce its own events — its work is inside the outer chunk.
  ParallelFor("pool_test.outer", 8, 2,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  ParallelFor("pool_test.inner", 16, 4,
                              [](std::size_t, std::size_t, std::size_t) {});
                }
              });
  const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
  Collector().Disable();
  EXPECT_NE(FindPhase(snapshot, "pool_test.outer"), nullptr);
  EXPECT_EQ(FindPhase(snapshot, "pool_test.inner"), nullptr);
}

TEST(PoolStatsTest, ResetClearsRecordedEvents) {
  Collector().Enable();
  ParallelFor("pool_test.reset", 32, 2,
              [](std::size_t, std::size_t, std::size_t) {});
  Collector().Reset();
  const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
  Collector().Disable();
  EXPECT_EQ(FindPhase(snapshot, "pool_test.reset"), nullptr);
}

// The acceptance contract: determination output is byte-identical with
// the collector on and off (recording never perturbs the partition or
// any merge order).
TEST(PoolStatsTest, DeterminationOutputByteIdenticalWithStatsOn) {
  CoraOptions gopts;
  gopts.num_entities = 24;
  const GeneratedData data = GenerateCora(gopts);
  const RuleSpec rule{{"author", "title"}, {"venue", "year"}};
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 4000;
  auto matching =
      BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  ASSERT_TRUE(matching.ok()) << matching.status().ToString();

  DetermineOptions dopts;
  dopts.threads = 4;

  Collector().Disable();
  auto off = DetermineThresholds(*matching, rule, dopts);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  off->elapsed_seconds = 0.0;  // Wall time is the one legitimate diff.
  const std::string off_json = DetermineResultToJson(*off, rule);

  Collector().Enable();
  Collector().Reset();
  auto on = DetermineThresholds(*matching, rule, dopts);
  const obs::PoolStatsSnapshot snapshot = Collector().Snapshot();
  Collector().Disable();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  on->elapsed_seconds = 0.0;
  const std::string on_json = DetermineResultToJson(*on, rule);

  EXPECT_EQ(off_json, on_json);
  // And the run actually recorded pooled work.
  EXPECT_FALSE(snapshot.empty());
}

}  // namespace
}  // namespace dd
