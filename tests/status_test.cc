#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x) {
  DD_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(*ok, 5);

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err.value_or(42), 42);
  EXPECT_EQ(ok.value_or(42), 5);
}

Result<int> Doubled(int x) {
  DD_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Doubled(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 6);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace dd
