#include "detect/violation_detector.h"

#include <gtest/gtest.h>

#include "data/corruptor.h"
#include "detect/detection_eval.h"
#include "tests/test_util.h"

namespace dd {
namespace {

TEST(DetectTest, HotelIntroExample) {
  // Paper intro: with dd1 = ([Address] -> [Region], <8, 3>) — <8, 4> in
  // plain-Levenshtein levels — t4 and t6 (similar Address, different
  // Region) are a true violation, while the format variants t1/t2 are
  // not.
  GeneratedData hotel = HotelExample();
  RuleSpec rule{{"Address"}, {"Region"}};
  MatchingOptions mopts;
  mopts.dmax = 30;
  auto found = DetectViolations(hotel.relation, rule, Pattern{{8}, {4}}, mopts);
  ASSERT_TRUE(found.ok());
  // Pair (3, 5) is t4-t6.
  bool has_t4_t6 = false;
  bool has_t1_t2 = false;
  for (const auto& [i, j] : *found) {
    if (i == 3 && j == 5) has_t4_t6 = true;
    if (i == 0 && j == 1) has_t1_t2 = true;
  }
  EXPECT_TRUE(has_t4_t6);
  EXPECT_FALSE(has_t1_t2);
}

TEST(DetectTest, FdMissesFormatVariantViolations) {
  // The FD (thresholds all 0) cannot detect t4-t6 because their
  // addresses are not exactly equal, but flags t5-t6 (equal Address,
  // different Region) and the false positive t1-t2.
  GeneratedData hotel = HotelExample();
  RuleSpec rule{{"Address"}, {"Region"}};
  MatchingOptions mopts;
  mopts.dmax = 30;
  auto found = DetectViolations(hotel.relation, rule, Pattern::Fd(1, 1), mopts);
  ASSERT_TRUE(found.ok());
  bool has_t4_t6 = false;
  bool has_t5_t6 = false;
  bool has_t1_t2 = false;
  for (const auto& [i, j] : *found) {
    if (i == 3 && j == 5) has_t4_t6 = true;
    if (i == 4 && j == 5) has_t5_t6 = true;
    if (i == 0 && j == 1) has_t1_t2 = true;
  }
  EXPECT_FALSE(has_t4_t6);
  EXPECT_TRUE(has_t5_t6);
  EXPECT_TRUE(has_t1_t2);  // The FD's false positive from the intro.
}

TEST(DetectTest, DetectsInjectedViolations) {
  RestaurantOptions gopts;
  gopts.num_entities = 60;
  GeneratedData data = GenerateRestaurant(gopts);
  CorruptorOptions copts;
  copts.corrupt_fraction = 0.08;
  auto corrupted = InjectViolations(data, {"city"}, copts);
  ASSERT_TRUE(corrupted.ok());

  RuleSpec rule{{"address"}, {"city"}};
  MatchingOptions mopts;
  mopts.dmax = 10;
  Pattern pattern{{8}, {8}};
  auto found = DetectViolations(corrupted->dirty, rule, pattern, mopts);
  ASSERT_TRUE(found.ok());
  DetectionQuality q = EvaluateDetection(*found, corrupted->truth_pairs);
  // A sensible DD pattern recovers a good share of the injected
  // violations. Absolute accuracy is bounded by the same effects the
  // paper reports (Table IV best: P=0.49, R=0.33, F=0.39): a corrupted
  // tuple also conflicts with X-similar tuples of other entities, which
  // the same-entity ground truth counts against precision.
  EXPECT_GT(q.recall, 0.4);
  EXPECT_GT(q.precision, 0.15);
  EXPECT_GT(q.f_measure, 0.25);
}

TEST(EvaluateDetectionTest, ExactArithmetic) {
  PairList truth = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  PairList found = {{0, 1}, {2, 3}, {8, 9}};
  DetectionQuality q = EvaluateDetection(found, truth);
  EXPECT_EQ(q.hits, 2u);
  EXPECT_DOUBLE_EQ(q.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_NEAR(q.f_measure, 2 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5), 1e-12);
}

TEST(EvaluateDetectionTest, NormalizesOrderAndDuplicates) {
  PairList truth = {{1, 0}};
  PairList found = {{0, 1}, {1, 0}, {0, 1}};
  DetectionQuality q = EvaluateDetection(found, truth);
  EXPECT_EQ(q.found_size, 1u);
  EXPECT_EQ(q.hits, 1u);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 1.0);
}

TEST(EvaluateDetectionTest, EmptySets) {
  DetectionQuality both = EvaluateDetection({}, {});
  EXPECT_DOUBLE_EQ(both.precision, 1.0);
  EXPECT_DOUBLE_EQ(both.recall, 1.0);
  DetectionQuality no_found = EvaluateDetection({}, {{0, 1}});
  EXPECT_DOUBLE_EQ(no_found.precision, 1.0);
  EXPECT_DOUBLE_EQ(no_found.recall, 0.0);
  EXPECT_DOUBLE_EQ(no_found.f_measure, 0.0);
  DetectionQuality no_truth = EvaluateDetection({{0, 1}}, {});
  EXPECT_DOUBLE_EQ(no_truth.precision, 0.0);
  EXPECT_DOUBLE_EQ(no_truth.recall, 1.0);
}

TEST(DetectTest, LooserRhsThresholdFindsFewerViolations) {
  // Raising ϕ[Y] towards dmax weakens the constraint: the all-dmax RHS
  // detects nothing (the paper's "useless" high-confidence pattern).
  GeneratedData hotel = HotelExample();
  RuleSpec rule{{"Address"}, {"Region"}};
  MatchingOptions mopts;
  mopts.dmax = 30;
  auto strict = DetectViolations(hotel.relation, rule, Pattern{{8}, {4}}, mopts);
  auto loose = DetectViolations(hotel.relation, rule, Pattern{{8}, {30}}, mopts);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(strict->size(), loose->size());
  EXPECT_TRUE(loose->empty());
}

TEST(DetectTest, RejectsUnknownAttribute) {
  GeneratedData hotel = HotelExample();
  RuleSpec rule{{"Address"}, {"NoSuch"}};
  MatchingOptions mopts;
  EXPECT_FALSE(
      DetectViolations(hotel.relation, rule, Pattern{{8}, {4}}, mopts).ok());
}

}  // namespace
}  // namespace dd
