// Shared helpers for the dd test binaries.

#ifndef DD_TESTS_TEST_UTIL_H_
#define DD_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/rule.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "matching/matching_relation.h"

namespace dd::testutil {

// A synthetic matching relation with explicit level columns — handy for
// exact-count assertions without running metrics.
inline MatchingRelation MakeMatching(
    std::vector<std::string> attrs, int dmax,
    const std::vector<std::vector<Level>>& rows) {
  MatchingRelation m(std::move(attrs), dmax);
  std::uint32_t next = 0;
  for (const auto& row : rows) {
    m.AddTuple(next, next + 1, row);
    next += 2;
  }
  return m;
}

// A pseudo-random matching relation for property tests.
inline MatchingRelation RandomMatching(std::size_t attrs, int dmax,
                                       std::size_t tuples,
                                       std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t a = 0; a < attrs; ++a) {
    // Sequential append sidesteps a GCC 12 -Wrestrict false positive
    // (PR105329) on "literal" + std::to_string(...).
    std::string name = "a";
    name += std::to_string(a);
    names.push_back(std::move(name));
  }
  MatchingRelation m(std::move(names), dmax);
  Rng rng(seed);
  std::vector<Level> levels(attrs);
  for (std::size_t t = 0; t < tuples; ++t) {
    for (auto& l : levels) {
      // Mildly correlated levels: column 0 drives the rest, so real
      // dependencies exist and confidences are non-trivial.
      l = static_cast<Level>(rng.NextBounded(static_cast<std::uint64_t>(dmax) + 1));
    }
    // Make later columns correlate with column 0 half of the time.
    for (std::size_t a = 1; a < attrs; ++a) {
      if (rng.NextBool(0.5)) {
        int v = static_cast<int>(levels[0]) +
                static_cast<int>(rng.NextBounded(3)) - 1;
        if (v < 0) v = 0;
        if (v > dmax) v = dmax;
        levels[a] = static_cast<Level>(v);
      }
    }
    m.AddTuple(static_cast<std::uint32_t>(2 * t),
               static_cast<std::uint32_t>(2 * t + 1), levels);
  }
  return m;
}

// The Hotel example matched over (Address -> Region), paper dd1 setting.
inline MatchingRelation HotelMatching(int dmax = 10) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = dmax;
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  return std::move(m).value();
}

// Minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals) — enough to catch unbalanced braces, missing
// commas and unescaped quotes in the hand-rolled exporters.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipWs();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // Skip the escaped character.
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }
  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace dd::testutil

#endif  // DD_TESTS_TEST_UTIL_H_
