// Accuracy-vs-speed frontier of the approximation subsystem
// (src/approx): end-to-end determination time and top-l answer recall
// of the sampled pipeline against the exact one, swept over sample
// rate × dataset × algorithm (pure uniform sampling vs LSH-blocked
// stratification vs the adaptive refinement driver).
//
// The exact leg is the streaming grid build (approx/exact_stream.h):
// one pass over all N(N-1)/2 pairs into the (dmax+1)^dims histogram,
// never materializing the matching relation — the only exact pipeline
// that is feasible at the row counts this harness targets. Every
// measurement is emitted as
//   BENCH_JSON {"bench": "micro_approx", "phase": "...", "threads": T,
//               "rows": N, "pairs": P, "elapsed_s": W,
//               "sample_fraction": F, "near_pairs": B, "rounds": R,
//               "converged": 0|1, "recall_top1": ...,
//               "recall_top5": ..., "speedup_vs_exact": S,
//               "host_cores": C, "run_id": "..."}
// with the dataset and sample rate encoded in the phase key so
// tools/benchcmp can join fresh runs against
// benchmarks/baselines/BENCH_micro_approx.json at equal configs.
// recall_topK = |exact top-K patterns found in the approx top-K| / K;
// the exact leg's rows carry recall 1 and speedup 1 by definition.
//
// Knobs:
//   DD_BENCH_APPROX_ROWS   numeric synthetic rows (default 20000;
//                          the committed 200k baseline row was captured
//                          with DD_BENCH_APPROX_ROWS=200000)
//   DD_BENCH_APPROX_CORA   cora entities (default 60)
//   DD_BENCH_APPROX_RATES  comma list of fixed sample rates
//                          (default "0.001,0.01,0.1")

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "approx/exact_stream.h"
#include "approx/refine.h"
#include "benchmarks/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/determiner.h"
#include "data/generators.h"
#include "data/relation.h"
#include "matching/builder.h"

namespace {

struct Row {
  std::string phase;
  std::size_t threads = 1;
  std::size_t rows = 0;
  std::uint64_t pairs = 0;
  double elapsed_s = 0.0;
  double sample_fraction = 1.0;
  std::uint64_t near_pairs = 0;
  std::size_t rounds = 0;
  bool converged = true;
  double recall_top1 = 1.0;
  double recall_top5 = 1.0;
  double speedup_vs_exact = 1.0;
};

std::string BenchRunId() {
  if (const char* env = std::getenv("DD_BENCH_RUN_ID");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  return dd::StrFormat("%011llx-%04x",
                       static_cast<unsigned long long>(us) & 0xfffffffffffULL,
                       static_cast<unsigned>(::getpid()) & 0xffff);
}

// A numeric relation with 50 planted value clusters: rows of one
// cluster sit within |Δ| <= 2 on x1/x2 and |Δ| <= 1 on y, distinct
// clusters are >= 4 apart, so close-(x1, x2) pairs imply close y — the
// dependency the determination should find. Values are small integers,
// which keeps the distinct-value count ~150 per attribute and lets the
// exact leg run off precomputed distinct-pair level tables.
dd::Relation MakeSyntheticNumeric(std::size_t rows) {
  dd::Schema schema({{"x1", dd::AttributeType::kNumeric},
                     {"x2", dd::AttributeType::kNumeric},
                     {"y", dd::AttributeType::kNumeric}});
  dd::Relation relation(schema);
  relation.Reserve(rows);
  std::mt19937_64 rng(20260808);
  constexpr std::uint64_t kClusters = 50;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t g = rng() % kClusters;
    const std::uint64_t x1 = 4 * g + rng() % 3;
    const std::uint64_t x2 = 4 * ((g * 7 + 3) % kClusters) + rng() % 3;
    const std::uint64_t y = 4 * ((g * 13 + 5) % kClusters) + rng() % 2;
    if (!relation
             .AddRow({std::to_string(x1), std::to_string(x2),
                      std::to_string(y)})
             .ok()) {
      std::abort();
    }
  }
  return relation;
}

// Fraction of the exact top-k patterns present anywhere in the approx
// top-k (order-insensitive: recall, not rank correlation).
double RecallTopK(const std::vector<dd::DeterminedPattern>& exact,
                  const std::vector<dd::DeterminedPattern>& approx,
                  std::size_t k) {
  const std::size_t want = std::min(k, exact.size());
  if (want == 0) return 1.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < want; ++i) {
    for (std::size_t j = 0; j < std::min(k, approx.size()); ++j) {
      if (exact[i].pattern == approx[j].pattern) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(want);
}

std::vector<double> SampleRates() {
  std::vector<double> rates;
  if (const char* env = std::getenv("DD_BENCH_APPROX_RATES");
      env != nullptr && env[0] != '\0') {
    const std::string list(env);
    for (std::size_t pos = 0; pos < list.size();) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      const double r = std::atof(list.substr(pos, comma - pos).c_str());
      if (r > 0.0 && r <= 1.0) rates.push_back(r);
      pos = comma + 1;
    }
  }
  if (rates.empty()) rates = {0.001, 0.01, 0.1};
  return rates;
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && env[0] != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// Runs the full frontier for one dataset: the exact streaming leg,
// fixed-rate sampling with and without blocking, and the adaptive
// refinement driver.
void RunDataset(const std::string& tag, const dd::Relation& relation,
                const dd::RuleSpec& rule, const dd::MatchingOptions& matching,
                const std::vector<double>& rates, std::vector<Row>* rows) {
  const std::uint64_t n = relation.num_rows();
  const std::uint64_t total = n * (n - 1) / 2;

  // Exact leg: streaming grid build + top-5 search.
  dd::DetermineOptions determine;
  determine.top_l = 5;
  dd::Stopwatch exact_timer;
  auto provider = dd::approx::BuildStreamingGridProvider(relation, rule,
                                                         matching);
  if (!provider.ok()) {
    std::fprintf(stderr, "%s: exact stream failed: %s\n", tag.c_str(),
                 provider.status().ToString().c_str());
    return;
  }
  auto exact = dd::DetermineWithProvider(
      provider->get(), rule.lhs.size(), rule.rhs.size(), matching.dmax,
      determine, "stream");
  if (!exact.ok()) {
    std::fprintf(stderr, "%s: exact determine failed: %s\n", tag.c_str(),
                 exact.status().ToString().c_str());
    return;
  }
  const double exact_s = exact_timer.ElapsedSeconds();
  rows->push_back({tag + "_exact", 1, static_cast<std::size_t>(n), total,
                   exact_s});
  std::printf("  %-28s %9.3fs  (pairs %llu)\n", (tag + "_exact").c_str(),
              exact_s, static_cast<unsigned long long>(total));
  std::fflush(stdout);

  // Approx legs. One lambda per configuration keeps the measurement
  // identical across the frontier.
  const auto run_approx = [&](const std::string& phase, double rate,
                              bool blocking, bool adaptive) {
    dd::approx::ApproxDetermineOptions options;
    options.determine.top_l = 5;
    options.approx.sample_target = std::max<std::uint64_t>(
        1000, static_cast<std::uint64_t>(rate * static_cast<double>(total)));
    options.approx.lsh.enabled = blocking;
    if (!adaptive) options.approx.max_rounds = 1;
    dd::Stopwatch timer;
    auto result = dd::approx::ApproxDetermineThresholds(relation, rule,
                                                        matching, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: approx failed: %s\n", phase.c_str(),
                   result.status().ToString().c_str());
      return;
    }
    const double s = timer.ElapsedSeconds();
    Row row;
    row.phase = phase;
    row.rows = static_cast<std::size_t>(n);
    row.pairs = total;
    row.elapsed_s = s;
    row.sample_fraction = result->sample_fraction;
    row.near_pairs = result->near_pairs;
    row.rounds = result->rounds;
    row.converged = result->converged;
    row.recall_top1 =
        RecallTopK(exact->patterns, result->determine.patterns, 1);
    row.recall_top5 =
        RecallTopK(exact->patterns, result->determine.patterns, 5);
    row.speedup_vs_exact = s > 0.0 ? exact_s / s : 0.0;
    rows->push_back(row);
    std::printf("  %-28s %9.3fs  %7.1fx  recall@1 %.2f  recall@5 %.2f  "
                "fraction %.2e%s\n",
                phase.c_str(), s, row.speedup_vs_exact, row.recall_top1,
                row.recall_top5, row.sample_fraction,
                adaptive ? dd::StrFormat("  rounds %zu%s", result->rounds,
                                         result->converged ? "" : " (cap)")
                               .c_str()
                         : "");
    std::fflush(stdout);
  };

  for (const double rate : rates) {
    run_approx(dd::StrFormat("%s_sample_r%g", tag.c_str(), rate), rate,
               /*blocking=*/false, /*adaptive=*/false);
    run_approx(dd::StrFormat("%s_blocked_r%g", tag.c_str(), rate), rate,
               /*blocking=*/true, /*adaptive=*/false);
  }
  run_approx(tag + "_adaptive", /*rate=*/0.0, /*blocking=*/true,
             /*adaptive=*/true);
}

void Emit(const std::vector<Row>& rows) {
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  const std::string run_id = BenchRunId();
  for (const Row& row : rows) {
    std::printf(
        "BENCH_JSON {\"bench\": \"micro_approx\", \"phase\": \"%s\", "
        "\"threads\": %zu, \"rows\": %zu, \"pairs\": %llu, "
        "\"elapsed_s\": %.6f, \"sample_fraction\": %.6e, "
        "\"near_pairs\": %llu, \"rounds\": %zu, \"converged\": %d, "
        "\"recall_top1\": %.3f, \"recall_top5\": %.3f, "
        "\"speedup_vs_exact\": %.3f, \"host_cores\": %u, "
        "\"run_id\": \"%s\"}\n",
        row.phase.c_str(), row.threads, row.rows,
        static_cast<unsigned long long>(row.pairs), row.elapsed_s,
        row.sample_fraction, static_cast<unsigned long long>(row.near_pairs),
        row.rounds, row.converged ? 1 : 0, row.recall_top1, row.recall_top5,
        row.speedup_vs_exact, host_cores, run_id.c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  dd::bench::ApplyThreadsArg(argc, argv);
  const std::size_t numeric_rows = EnvSize("DD_BENCH_APPROX_ROWS", 20000);
  const std::size_t cora_entities = EnvSize("DD_BENCH_APPROX_CORA", 60);
  const std::vector<double> rates = SampleRates();

  std::printf("=== micro_approx: accuracy-vs-speed frontier of the sampled "
              "determination ===\n");

  std::vector<Row> rows;

  // Dataset 1: planted-rule numeric synthetic (the N >= 200k acceptance
  // workload; blocking uses the sorted-neighbor numeric family).
  {
    std::printf("\nnumeric synthetic, %zu rows:\n", numeric_rows);
    const dd::Relation relation = MakeSyntheticNumeric(numeric_rows);
    const dd::RuleSpec rule{{"x1", "x2"}, {"y"}};
    dd::MatchingOptions matching;
    matching.dmax = 8;
    RunDataset(dd::StrFormat("numeric_n%zu", numeric_rows), relation, rule,
               matching, rates, &rows);
  }

  // Dataset 2: cora strings (edit-distance metrics; blocking uses
  // q-gram minhash banding and length buckets).
  {
    dd::CoraOptions options;
    options.num_entities = cora_entities;
    const dd::GeneratedData cora = dd::GenerateCora(options);
    std::printf("\ncora, %zu entities (%zu rows):\n", cora_entities,
                cora.relation.num_rows());
    const dd::RuleSpec rule{{"author", "title"}, {"venue"}};
    dd::MatchingOptions matching;
    matching.dmax = 8;
    RunDataset(dd::StrFormat("cora_e%zu", cora_entities), cora.relation, rule,
               matching, rates, &rows);
  }

  std::printf("\n");
  Emit(rows);
  return 0;
}
