// Regenerates paper Figure 6: scalability on data sizes when returning
// the 5-th largest Ū answers. Same sweep as Figure 2 with l = 5.
// Expected shape: DA+PA identical to Figure 2 (no pruning); the pruning
// improvement of DA+PAP is smaller than for l = 1; DAP+PAP stays lowest.

#include <cstdio>

#include "benchmarks/bench_util.h"

int main() {
  std::printf("=== Figure 6: scalability on data sizes (return 5-th largest "
              "U) ===\n");
  const char* approaches[] = {"DA+PA", "DA+PAP", "DAP+PAP"};
  const auto sizes = dd::bench::ScalabilitySizes();

  for (const auto& rule : dd::bench::kRules) {
    std::printf("\n%s\n", rule.label);
    std::printf("%10s", "|M|");
    for (const char* a : approaches) std::printf(" %12s", a);
    std::printf("\n");
    for (std::size_t size : sizes) {
      dd::bench::RuleWorkload w =
          dd::bench::MakeRuleWorkload(rule.number, size);
      std::printf("%10zu", w.matching.num_tuples());
      for (const char* a : approaches) {
        auto opts = dd::bench::ApproachOptions(a, /*top_l=*/5);
        auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
        if (!result.ok()) {
          std::printf(" %12s", "error");
          continue;
        }
        std::printf(" %11.3fs", result->elapsed_seconds);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape (paper): as Figure 2, but the pruning gain\n"
              "of DA+PAP over DA+PA is smaller than at l = 1.\n");
  return 0;
}
