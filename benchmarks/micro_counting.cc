// Ablation micro-benchmarks for the measure providers (DESIGN.md §5):
// paper-faithful O(M) scan counting vs the O(1) prefix-sum grid
// extension, plus grid build cost, expected-utility integration, and
// lattice prune cost.
//
// Before the google-benchmark suite, main() emits a SIMD-vs-scalar
// kernel matrix (packing × dmax × rows for the fused CountLeq and the
// GridIndices kernels, DESIGN.md §17) as BENCH_JSON rows:
//   BENCH_JSON {"bench": "micro_counting", "phase":
//               "countxy_avx2_d4_r100000", "rows": N, "dmax": D,
//               "packing": "4bit", "elapsed_s": W,
//               "speedup_vs_scalar": S, "host_cores": C,
//               "run_id": "..."}
// speedup_vs_scalar divides the scalar kernel's wall time for the same
// shape by this row's (1.0 on scalar rows). AVX2 rows appear only on
// hosts that pass the CPUID dispatch check; tools/benchcmp reports
// unmatched keys without failing, so captures from AVX2 and non-AVX2
// hosts stay comparable on the scalar rows. The matrix runs even when
// --benchmark_filter skips every google benchmark, which is how the CI
// smoke keeps it cheap.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/candidate_lattice.h"
#include "core/expected_utility.h"
#include "core/measure_provider.h"
#include "core/simd_count.h"
#include "matching/matching_relation.h"

namespace {

dd::MatchingRelation RandomMatching(std::size_t attrs, int dmax,
                                    std::size_t tuples, std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t a = 0; a < attrs; ++a) {
    // Sequential append sidesteps a GCC 12 -Wrestrict false positive
    // (PR105329) on "literal" + std::to_string(...).
    std::string name = "a";
    name += std::to_string(a);
    names.push_back(std::move(name));
  }
  dd::MatchingRelation m(std::move(names), dmax);
  dd::Rng rng(seed);
  std::vector<dd::Level> levels(attrs);
  for (std::size_t t = 0; t < tuples; ++t) {
    for (auto& l : levels) {
      l = static_cast<dd::Level>(
          rng.NextBounded(static_cast<std::uint64_t>(dmax) + 1));
    }
    m.AddTuple(static_cast<std::uint32_t>(2 * t),
               static_cast<std::uint32_t>(2 * t + 1), levels);
  }
  return m;
}

void BM_ScanCountXY(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  dd::MatchingRelation m = RandomMatching(4, 10, tuples, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  dd::ScanMeasureProvider provider(m, rule);
  provider.SetLhs({5, 5});
  int y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountXY({y % 11, (y + 3) % 11}));
    ++y;
  }
  state.counters["rows_per_second"] = benchmark::Counter(
      static_cast<double>(tuples),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ScanCountXY)->Arg(20000)->Arg(100000)->Arg(500000);

void BM_ScanCountXYThreads(benchmark::State& state) {
  dd::MatchingRelation m = RandomMatching(4, 10, 500000, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  dd::ScanMeasureProvider provider(
      m, rule, /*full_scan=*/true,
      static_cast<std::size_t>(state.range(0)));
  provider.SetLhs({5, 5});
  int y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountXY({y % 11, (y + 3) % 11}));
    ++y;
  }
}
BENCHMARK(BM_ScanCountXYThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GridCountXY(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  dd::MatchingRelation m = RandomMatching(4, 10, tuples, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  auto provider = dd::GridMeasureProvider::Create(m, rule);
  if (!provider.ok()) {
    state.SkipWithError("grid creation failed");
    return;
  }
  provider.value()->SetLhs({5, 5});
  int y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.value()->CountXY({y % 11, (y + 3) % 11}));
    ++y;
  }
}
BENCHMARK(BM_GridCountXY)->Arg(20000)->Arg(100000)->Arg(500000);

void BM_GridBuild(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  dd::MatchingRelation m = RandomMatching(4, 10, tuples, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  for (auto _ : state) {
    auto provider = dd::GridMeasureProvider::Create(m, rule);
    benchmark::DoNotOptimize(provider);
  }
}
BENCHMARK(BM_GridBuild)->Arg(20000)->Arg(100000);

void BM_ExpectedUtility(benchmark::State& state) {
  dd::UtilityOptions opts;
  opts.prior_mean_cq = 0.3;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t total = n * 2;
  double cq = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::ExpectedUtility(total, n, cq, 0.9, opts));
    cq += 0.01;
    if (cq > 0.9) cq = 0.1;
  }
}
BENCHMARK(BM_ExpectedUtility)->Arg(100)->Arg(100000)->Arg(1000000);

void BM_ExpectedUtilityIntegration(benchmark::State& state) {
  dd::UtilityOptions opts;
  opts.prior_mean_cq = 0.3;
  opts.method = dd::UtilityMethod::kNumericIntegration;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t total = n * 2;
  double cq = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::ExpectedUtility(total, n, cq, 0.9, opts));
    cq += 0.01;
    if (cq > 0.9) cq = 0.1;
  }
}
BENCHMARK(BM_ExpectedUtilityIntegration)->Arg(100)->Arg(100000);

void BM_LatticePrune(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dd::CandidateLattice lat(dims, 10);
    dd::Levels top(dims, 10);
    lat.Prune(top, 0.5);
    benchmark::DoNotOptimize(lat.alive_count());
  }
}
BENCHMARK(BM_LatticePrune)->Arg(1)->Arg(2)->Arg(3);

void BM_MakeOrder(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto order = dd::CandidateLattice::MakeOrder(
        dims, 10, dd::ProcessingOrder::kMidFirst);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_MakeOrder)->Arg(2)->Arg(3);

// ---------------------------------------------------------------------
// SIMD kernel matrix.

// Correlation id for this capture: DD_BENCH_RUN_ID when set, else
// wall-clock microseconds + pid (the micro_parallel scheme).
std::string BenchRunId() {
  if (const char* env = std::getenv("DD_BENCH_RUN_ID");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  return dd::StrFormat("%011llx-%04x",
                       static_cast<unsigned long long>(us) & 0xfffffffffffULL,
                       static_cast<unsigned>(::getpid()) & 0xffff);
}

// Best-of-3 wall time of `iters` back-to-back kernel passes.
template <typename Fn>
double TimeBest(int iters, const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    dd::Stopwatch timer;
    for (int i = 0; i < iters; ++i) fn();
    const double s = timer.ElapsedSeconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

void EmitKernelMatrix() {
  using dd::simd::internal::Avx2Kernels;
  using dd::simd::internal::kScalarKernels;
  const dd::simd::internal::KernelTable* avx2 =
      dd::simd::CpuSupportsAvx2() ? Avx2Kernels() : nullptr;
  const unsigned host_cores =
      std::max(1u, std::thread::hardware_concurrency());
  const std::string run_id = BenchRunId();
  constexpr std::size_t kAttrs = 4;  // The BM_ScanCountXY rule shape.

  for (int dmax : {4, 14, 200}) {
    for (std::size_t rows : {std::size_t{100000}, std::size_t{1000000}}) {
      dd::MatchingRelation m = RandomMatching(kAttrs, dmax, rows, 1);
      std::vector<dd::simd::ColumnView> views;
      std::vector<std::uint8_t> bounds;
      std::vector<std::uint32_t> strides;
      const std::uint32_t base = static_cast<std::uint32_t>(dmax) + 1;
      std::uint32_t stride = 1;
      for (std::size_t a = 0; a < kAttrs; ++a) {
        views.push_back(dd::simd::View(m.column(a)));
        bounds.push_back(static_cast<std::uint8_t>(dmax / 2));
        strides.push_back(stride);
        stride *= base;  // 201^3 < 2^32: indices stay in range.
      }
      const char* packing = m.column(0).packed4() ? "4bit" : "8bit";
      // Enough passes that the scalar leg clears benchcmp's absolute
      // noise floor by orders of magnitude.
      const int iters = rows >= 1000000 ? 8 : 40;
      std::vector<std::uint32_t> cells(rows);

      struct Shape {
        const char* kernel;
        double scalar_s;
        double avx2_s;  // 0 when AVX2 is unavailable.
      };
      std::uint64_t sink = 0;
      Shape shapes[] = {
          {"countxy",
           TimeBest(iters,
                    [&] {
                      sink += kScalarKernels.count_leq(
                          views.data(), bounds.data(), kAttrs, 0, rows);
                    }),
           avx2 == nullptr
               ? 0.0
               : TimeBest(iters,
                          [&] {
                            sink += avx2->count_leq(views.data(),
                                                    bounds.data(), kAttrs, 0,
                                                    rows);
                          })},
          {"grid",
           TimeBest(iters,
                    [&] {
                      kScalarKernels.grid_indices(views.data(), strides.data(),
                                                  kAttrs, 0, rows,
                                                  cells.data());
                    }),
           avx2 == nullptr
               ? 0.0
               : TimeBest(iters, [&] {
                   avx2->grid_indices(views.data(), strides.data(), kAttrs, 0,
                                      rows, cells.data());
                 })},
      };
      if (sink == 0xdeadbeef) std::fprintf(stderr, "impossible\n");

      for (const Shape& shape : shapes) {
        std::printf(
            "BENCH_JSON {\"bench\": \"micro_counting\", \"phase\": "
            "\"%s_scalar_d%d_r%zu\", \"rows\": %zu, \"dmax\": %d, "
            "\"packing\": \"%s\", \"elapsed_s\": %.6f, "
            "\"speedup_vs_scalar\": 1.000, \"host_cores\": %u, "
            "\"run_id\": \"%s\"}\n",
            shape.kernel, dmax, rows, rows, dmax, packing, shape.scalar_s,
            host_cores, run_id.c_str());
        if (shape.avx2_s > 0.0) {
          std::printf(
              "BENCH_JSON {\"bench\": \"micro_counting\", \"phase\": "
              "\"%s_avx2_d%d_r%zu\", \"rows\": %zu, \"dmax\": %d, "
              "\"packing\": \"%s\", \"elapsed_s\": %.6f, "
              "\"speedup_vs_scalar\": %.3f, \"host_cores\": %u, "
              "\"run_id\": \"%s\"}\n",
              shape.kernel, dmax, rows, rows, dmax, packing, shape.avx2_s,
              shape.scalar_s / shape.avx2_s, host_cores, run_id.c_str());
        }
      }
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  EmitKernelMatrix();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
