// Ablation micro-benchmarks for the measure providers (DESIGN.md §5):
// paper-faithful O(M) scan counting vs the O(1) prefix-sum grid
// extension, plus grid build cost, expected-utility integration, and
// lattice prune cost.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/candidate_lattice.h"
#include "core/expected_utility.h"
#include "core/measure_provider.h"
#include "matching/matching_relation.h"

namespace {

dd::MatchingRelation RandomMatching(std::size_t attrs, int dmax,
                                    std::size_t tuples, std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t a = 0; a < attrs; ++a) {
    // Sequential append sidesteps a GCC 12 -Wrestrict false positive
    // (PR105329) on "literal" + std::to_string(...).
    std::string name = "a";
    name += std::to_string(a);
    names.push_back(std::move(name));
  }
  dd::MatchingRelation m(std::move(names), dmax);
  dd::Rng rng(seed);
  std::vector<dd::Level> levels(attrs);
  for (std::size_t t = 0; t < tuples; ++t) {
    for (auto& l : levels) {
      l = static_cast<dd::Level>(
          rng.NextBounded(static_cast<std::uint64_t>(dmax) + 1));
    }
    m.AddTuple(static_cast<std::uint32_t>(2 * t),
               static_cast<std::uint32_t>(2 * t + 1), levels);
  }
  return m;
}

void BM_ScanCountXY(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  dd::MatchingRelation m = RandomMatching(4, 10, tuples, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  dd::ScanMeasureProvider provider(m, rule);
  provider.SetLhs({5, 5});
  int y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountXY({y % 11, (y + 3) % 11}));
    ++y;
  }
  state.counters["rows_per_second"] = benchmark::Counter(
      static_cast<double>(tuples),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ScanCountXY)->Arg(20000)->Arg(100000)->Arg(500000);

void BM_ScanCountXYThreads(benchmark::State& state) {
  dd::MatchingRelation m = RandomMatching(4, 10, 500000, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  dd::ScanMeasureProvider provider(
      m, rule, /*full_scan=*/true,
      static_cast<std::size_t>(state.range(0)));
  provider.SetLhs({5, 5});
  int y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountXY({y % 11, (y + 3) % 11}));
    ++y;
  }
}
BENCHMARK(BM_ScanCountXYThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GridCountXY(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  dd::MatchingRelation m = RandomMatching(4, 10, tuples, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  auto provider = dd::GridMeasureProvider::Create(m, rule);
  if (!provider.ok()) {
    state.SkipWithError("grid creation failed");
    return;
  }
  provider.value()->SetLhs({5, 5});
  int y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.value()->CountXY({y % 11, (y + 3) % 11}));
    ++y;
  }
}
BENCHMARK(BM_GridCountXY)->Arg(20000)->Arg(100000)->Arg(500000);

void BM_GridBuild(benchmark::State& state) {
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  dd::MatchingRelation m = RandomMatching(4, 10, tuples, 1);
  dd::ResolvedRule rule{{0, 1}, {2, 3}};
  for (auto _ : state) {
    auto provider = dd::GridMeasureProvider::Create(m, rule);
    benchmark::DoNotOptimize(provider);
  }
}
BENCHMARK(BM_GridBuild)->Arg(20000)->Arg(100000);

void BM_ExpectedUtility(benchmark::State& state) {
  dd::UtilityOptions opts;
  opts.prior_mean_cq = 0.3;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t total = n * 2;
  double cq = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::ExpectedUtility(total, n, cq, 0.9, opts));
    cq += 0.01;
    if (cq > 0.9) cq = 0.1;
  }
}
BENCHMARK(BM_ExpectedUtility)->Arg(100)->Arg(100000)->Arg(1000000);

void BM_ExpectedUtilityIntegration(benchmark::State& state) {
  dd::UtilityOptions opts;
  opts.prior_mean_cq = 0.3;
  opts.method = dd::UtilityMethod::kNumericIntegration;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t total = n * 2;
  double cq = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::ExpectedUtility(total, n, cq, 0.9, opts));
    cq += 0.01;
    if (cq > 0.9) cq = 0.1;
  }
}
BENCHMARK(BM_ExpectedUtilityIntegration)->Arg(100)->Arg(100000);

void BM_LatticePrune(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dd::CandidateLattice lat(dims, 10);
    dd::Levels top(dims, 10);
    lat.Prune(top, 0.5);
    benchmark::DoNotOptimize(lat.alive_count());
  }
}
BENCHMARK(BM_LatticePrune)->Arg(1)->Arg(2)->Arg(3);

void BM_MakeOrder(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto order = dd::CandidateLattice::MakeOrder(
        dims, 10, dd::ProcessingOrder::kMidFirst);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_MakeOrder)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
