// Micro-benchmarks of matching-relation construction: all-pairs vs
// sampled builds over the synthetic generators.

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "matching/builder.h"

namespace {

void BM_BuildMatchingAllPairs(benchmark::State& state) {
  dd::RestaurantOptions gopts;
  gopts.num_entities = static_cast<std::size_t>(state.range(0));
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  std::size_t tuples = 0;
  for (auto _ : state) {
    auto m = dd::BuildMatchingRelation(data.relation,
                                       {"name", "address", "city"}, mopts);
    benchmark::DoNotOptimize(m);
    tuples = m.ok() ? m->num_tuples() : 0;
  }
  state.counters["matching_tuples"] = static_cast<double>(tuples);
  state.counters["pairs_per_second"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BuildMatchingAllPairs)->Arg(30)->Arg(60)->Arg(120);

void BM_BuildMatchingSampled(benchmark::State& state) {
  dd::CoraOptions gopts;
  gopts.num_entities = 150;
  dd::GeneratedData data = dd::GenerateCora(gopts);
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto m = dd::BuildMatchingRelation(data.relation, {"author", "title"},
                                       mopts);
    benchmark::DoNotOptimize(m);
  }
  state.counters["pairs_per_second"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BuildMatchingSampled)->Arg(5000)->Arg(20000)->Arg(50000);

// Thread sweep of the parallel triangular build (arg = worker-pool
// size); compare against Arg(1) for the speedup.
void BM_BuildMatchingThreads(benchmark::State& state) {
  dd::RestaurantOptions gopts;
  gopts.num_entities = 120;
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.threads = static_cast<std::size_t>(state.range(0));
  std::size_t tuples = 0;
  for (auto _ : state) {
    auto m = dd::BuildMatchingRelation(data.relation,
                                       {"name", "address", "city"}, mopts);
    benchmark::DoNotOptimize(m);
    tuples = m.ok() ? m->num_tuples() : 0;
  }
  state.counters["matching_tuples"] = static_cast<double>(tuples);
  state.counters["pairs_per_second"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BuildMatchingThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
