// Regenerates paper Figure 2: time cost vs data size (matching tuples)
// for DA+PA, DA+PAP and DAP+PAP on all four rules, returning the
// largest-Ū answer. The paper sweeps 100k..1m matching tuples; the
// default here sweeps 20k..100k (set DD_BENCH_SCALE=10 for the paper's
// sizes). Expected shape: linear growth in |M|; DA+PAP below DA+PA;
// DAP+PAP lowest (or tied).
//
// Besides the human-readable table, every measurement is also emitted
// as a machine-readable line
//   BENCH_JSON {"figure": 2, "rule": R, "approach": "...", "pairs": M,
//               "elapsed_s": T, "phases": {...}, "histograms": {...}}
// where "phases" carries the per-phase wall times recorded by the
// tracing layer (src/obs) and "histograms" the p50/p95/p99 estimates of
// every latency histogram touched by the run — grep '^BENCH_JSON ' to
// collect them. DD_BENCH_THREADS="1,2,4,8" additionally sweeps the
// worker-pool size per cell, stamping rows with "threads" and
// "speedup_vs_1" (see benchmarks/bench_util.h).

#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  dd::bench::ApplyThreadsArg(argc, argv);
  std::printf("=== Figure 2: time performance on various data sizes "
              "(return largest U) ===\n");
  const char* approaches[] = {"DA+PA", "DA+PAP", "DAP+PAP"};
  const auto sizes = dd::bench::ScalabilitySizes();
  // Thread-sweep mode: DD_BENCH_THREADS="1,2,4,8" measures every
  // (rule, size, approach) cell once per pool size and stamps the
  // BENCH_JSON rows with "threads" and "speedup_vs_1". The default is
  // one run at the process default (results are bit-identical at any
  // thread count; only the wall times differ).
  const std::vector<std::size_t> sweep = dd::bench::ThreadSweep({0});

  for (const auto& rule : dd::bench::kRules) {
    std::printf("\n%s\n", rule.label);
    std::printf("%10s", "|M|");
    for (const char* a : approaches) std::printf(" %12s", a);
    std::printf("\n");
    std::vector<std::string> json_rows;
    for (std::size_t size : sizes) {
      dd::bench::RuleWorkload w =
          dd::bench::MakeRuleWorkload(rule.number, size);
      std::printf("%10zu", w.matching.num_tuples());
      for (const char* a : approaches) {
        double one_thread_s = 0.0;
        for (std::size_t threads : sweep) {
          auto opts = dd::bench::ApproachOptions(a);
          opts.threads = threads;
          dd::bench::ResetPhaseTimings();
          auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
          if (!result.ok()) {
            if (threads == sweep.back()) std::printf(" %12s", "error");
            continue;
          }
          if (threads == 1) one_thread_s = result->elapsed_seconds;
          const double speedup =
              one_thread_s > 0.0 && result->elapsed_seconds > 0.0
                  ? one_thread_s / result->elapsed_seconds
                  : 0.0;
          if (threads == sweep.back()) {
            std::printf(" %11.3fs", result->elapsed_seconds);
          }
          std::string row = dd::StrFormat(
              "{\"figure\": 2, \"rule\": %d, \"approach\": \"%s\", "
              "\"pairs\": %zu, \"threads\": %zu, \"elapsed_s\": %.6f, "
              "\"speedup_vs_1\": %.3f, \"phases\": ",
              rule.number, a, w.matching.num_tuples(), threads,
              result->elapsed_seconds, speedup);
          row += dd::bench::PhaseTimingsJson();
          row += ", \"histograms\": ";
          row += dd::bench::HistogramPercentilesJson();
          row += "}";
          json_rows.push_back(std::move(row));
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    for (const std::string& row : json_rows) {
      std::printf("BENCH_JSON %s\n", row.c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\nexpected shape (paper): linear in |M|; DA+PAP < DA+PA; "
              "DAP+PAP <= DA+PAP.\n");
  return 0;
}
