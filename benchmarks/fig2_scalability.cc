// Regenerates paper Figure 2: time cost vs data size (matching tuples)
// for DA+PA, DA+PAP and DAP+PAP on all four rules, returning the
// largest-Ū answer. The paper sweeps 100k..1m matching tuples; the
// default here sweeps 20k..100k (set DD_BENCH_SCALE=10 for the paper's
// sizes). Expected shape: linear growth in |M|; DA+PAP below DA+PA;
// DAP+PAP lowest (or tied).

#include <cstdio>

#include "benchmarks/bench_util.h"
#include "common/stopwatch.h"

int main() {
  std::printf("=== Figure 2: time performance on various data sizes "
              "(return largest U) ===\n");
  const char* approaches[] = {"DA+PA", "DA+PAP", "DAP+PAP"};
  const auto sizes = dd::bench::ScalabilitySizes();

  for (const auto& rule : dd::bench::kRules) {
    std::printf("\n%s\n", rule.label);
    std::printf("%10s", "|M|");
    for (const char* a : approaches) std::printf(" %12s", a);
    std::printf("\n");
    for (std::size_t size : sizes) {
      dd::bench::RuleWorkload w =
          dd::bench::MakeRuleWorkload(rule.number, size);
      std::printf("%10zu", w.matching.num_tuples());
      for (const char* a : approaches) {
        auto opts = dd::bench::ApproachOptions(a);
        auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
        if (!result.ok()) {
          std::printf(" %12s", "error");
          continue;
        }
        std::printf(" %11.3fs", result->elapsed_seconds);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape (paper): linear in |M|; DA+PAP < DA+PA; "
              "DAP+PAP <= DA+PAP.\n");
  return 0;
}
