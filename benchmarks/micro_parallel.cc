// Thread-sweep harness for the parallel hot paths (DESIGN.md §12):
// matching-relation construction, the DA+PA / DAP+PAP determination
// searches, and the incremental batch path, each measured at every
// worker-pool size in the sweep. Every measurement is emitted as
//   BENCH_JSON {"bench": "micro_parallel", "phase": "...",
//               "threads": T, "pairs": M, "elapsed_s": W,
//               "speedup_vs_1": S, "host_cores": C, "run_id": "..."}
// where speedup_vs_1 divides the 1-thread wall time of the same phase
// by this run's (1.0 at T=1; 0 when the sweep skipped T=1). The
// results at every T are bit-identical by construction — this harness
// measures wall time only. host_cores stamps the machine's hardware
// concurrency so tools/benchcmp can refuse wall-time comparisons
// across differently-sized hosts (the committed baseline was captured
// on a 1-core container); run_id (DD_BENCH_RUN_ID, default clock+pid)
// correlates rows of one capture in BENCH_trajectory.json.
//
// Knobs: DD_BENCH_PAIRS (default 20000 matching tuples),
// DD_BENCH_THREADS (default "1,2,4,8"), --threads N (pool default for
// the setup work outside the sweep).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/determiner.h"
#include "data/generators.h"
#include "incr/incremental_builder.h"
#include "matching/builder.h"

namespace {

constexpr int kRepetitions = 3;  // Keep the best (min) wall time.

struct Row {
  std::string phase;
  std::size_t threads = 0;
  std::size_t pairs = 0;
  double elapsed_s = 0.0;
};

// Best-of-kRepetitions wall time of `fn`.
template <typename Fn>
double TimeBest(const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    dd::Stopwatch timer;
    fn();
    const double s = timer.ElapsedSeconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

// Correlation id for this capture: DD_BENCH_RUN_ID when set, else
// wall-clock microseconds + pid (the same scheme as ddtool feeds).
std::string BenchRunId() {
  if (const char* env = std::getenv("DD_BENCH_RUN_ID");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  return dd::StrFormat("%011llx-%04x",
                       static_cast<unsigned long long>(us) & 0xfffffffffffULL,
                       static_cast<unsigned>(::getpid()) & 0xffff);
}

void Emit(const std::vector<Row>& rows) {
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  const std::string run_id = BenchRunId();
  // speedup_vs_1 joins each row against the same phase's 1-thread run.
  for (const Row& row : rows) {
    double base = 0.0;
    for (const Row& other : rows) {
      if (other.phase == row.phase && other.threads == 1) {
        base = other.elapsed_s;
        break;
      }
    }
    const double speedup =
        base > 0.0 && row.elapsed_s > 0.0 ? base / row.elapsed_s : 0.0;
    std::printf(
        "BENCH_JSON {\"bench\": \"micro_parallel\", \"phase\": \"%s\", "
        "\"threads\": %zu, \"pairs\": %zu, \"elapsed_s\": %.6f, "
        "\"speedup_vs_1\": %.3f, \"host_cores\": %u, \"run_id\": \"%s\"}\n",
        row.phase.c_str(), row.threads, row.pairs, row.elapsed_s, speedup,
        host_cores, run_id.c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  dd::bench::ApplyThreadsArg(argc, argv);
  const std::vector<std::size_t> sweep = dd::bench::ThreadSweep();
  const std::size_t pairs = dd::bench::BenchPairs(20000);

  std::printf("=== micro_parallel: thread sweep over the parallel hot paths "
              "(|M| = %zu) ===\n", pairs);

  // Cora rule 1 drives everything: long author/title strings make the
  // per-pair metric work realistic (edit distance dominates the build).
  dd::CoraOptions gopts;
  gopts.num_entities =
      static_cast<std::size_t>(1.0 + std::sqrt(2.0 * pairs) / 3.5) + 2;
  const dd::GeneratedData data = dd::GenerateCora(gopts);
  const dd::RuleSpec rule{{"author", "title"}, {"venue", "year"}};

  std::vector<Row> rows;

  // Phase 1: matching-relation build (the triangular pair loop).
  for (std::size_t t : sweep) {
    dd::MatchingOptions mopts;
    mopts.dmax = 10;
    mopts.max_pairs = pairs;
    mopts.seed = 1;
    mopts.threads = t;
    std::size_t tuples = 0;
    const double s = TimeBest([&] {
      auto m = dd::BuildMatchingRelation(data.relation, rule.AllAttributes(),
                                         mopts);
      tuples = m.ok() ? m->num_tuples() : 0;
    });
    rows.push_back({"matching_build", t, tuples, s});
    std::printf("  matching_build   threads=%zu  %.4fs\n", t, s);
    std::fflush(stdout);
  }

  // Phases 2-3: the determination searches over one shared relation.
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = pairs;
  mopts.seed = 1;
  auto matching = dd::BuildMatchingRelation(data.relation,
                                            rule.AllAttributes(), mopts);
  if (!matching.ok()) {
    std::fprintf(stderr, "matching build failed: %s\n",
                 matching.status().ToString().c_str());
    return 1;
  }
  for (const char* approach : {"DA+PA", "DAP+PAP"}) {
    const std::string phase =
        std::string("determine_") + (approach[1] == 'A' && approach[2] == '+'
                                         ? "da_pa" : "dap_pap");
    for (std::size_t t : sweep) {
      dd::DetermineOptions opts = dd::bench::ApproachOptions(approach);
      opts.threads = t;
      const double s = TimeBest([&] {
        auto result = dd::DetermineThresholds(*matching, rule, opts);
        if (!result.ok()) std::abort();
      });
      rows.push_back({phase, t, matching->num_tuples(), s});
      std::printf("  %-16s threads=%zu  %.4fs\n", phase.c_str(), t, s);
      std::fflush(stdout);
    }
  }

  // Phase 4: the incremental builder's batch path (delta distance
  // computations spread over the pool).
  for (std::size_t t : sweep) {
    const double s = TimeBest([&] {
      dd::IncrementalOptions iopts;
      iopts.matching.dmax = 10;
      iopts.threads = t;
      auto builder = dd::IncrementalMatchingBuilder::Create(
          data.relation.schema(), rule.AllAttributes(), iopts);
      if (!builder.ok()) std::abort();
      const std::size_t batch = 64;
      std::vector<std::vector<std::string>> inserts;
      for (std::size_t r = 0; r < data.relation.num_rows(); ++r) {
        inserts.push_back(data.relation.row(r));
        if (inserts.size() == batch) {
          if (!builder->ApplyBatch(inserts, {}).ok()) std::abort();
          inserts.clear();
        }
      }
      if (!inserts.empty() && !builder->ApplyBatch(inserts, {}).ok()) {
        std::abort();
      }
    });
    rows.push_back({"incr_batches", t, pairs, s});
    std::printf("  incr_batches     threads=%zu  %.4fs\n", t, s);
    std::fflush(stdout);
  }

  Emit(rows);
  return 0;
}
