// Micro-benchmarks for the observability primitives (src/obs): the
// numbers here bound the per-event cost that instrumentation adds to
// the determination hot paths. The budget (DESIGN.md §Observability) is
// a few nanoseconds per counter increment / suppressed log statement
// and tens of nanoseconds per aggregated trace span, so that
// whole-pipeline overhead stays within noise (<= 3% on micro_counting).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/parallel.h"
#include "core/determiner.h"
#include "obs/diag/flight_recorder.h"
#include "obs/explain/recorder.h"
#include "obs/pool_stats.h"
#include "obs/export/prometheus.h"
#include "obs/export/sampler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof/profiler.h"
#include "obs/trace.h"

namespace {

void BM_CounterIncrement(benchmark::State& state) {
  dd::obs::Counter& counter =
      dd::obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  dd::obs::Gauge& gauge =
      dd::obs::MetricsRegistry::Global().GetGauge("bench.gauge");
  double v = 0.0;
  for (auto _ : state) {
    gauge.Set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  dd::obs::Histogram& hist = dd::obs::MetricsRegistry::Global().GetHistogram(
      "bench.histogram", dd::obs::DefaultLatencyBoundsMs());
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v);
    v += 0.37;
    if (v > 2000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4);

// Registry lookup by name: not for hot loops (linear scan under a
// mutex) — handles should be cached, as every instrumented call site
// does with a function-local static.
void BM_RegistryLookup(benchmark::State& state) {
  dd::obs::MetricsRegistry& registry = dd::obs::MetricsRegistry::Global();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&registry.GetCounter("bench.lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

// Aggregated span enter/exit on an existing node (the steady-state cost
// of a per-LHS span): two clock reads plus two relaxed fetch_adds.
void BM_TraceSpanEnabled(benchmark::State& state) {
  dd::obs::Tracer::Global().set_enabled(true);
  for (auto _ : state) {
    dd::obs::TraceSpan span("bench_span");
  }
}
BENCHMARK(BM_TraceSpanEnabled)->Threads(1)->Threads(4);

void BM_TraceSpanDisabled(benchmark::State& state) {
  dd::obs::Tracer::Global().set_enabled(false);
  for (auto _ : state) {
    dd::obs::TraceSpan span("bench_span_off");
  }
  dd::obs::Tracer::Global().set_enabled(true);
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_NestedTraceSpans(benchmark::State& state) {
  dd::obs::Tracer::Global().set_enabled(true);
  for (auto _ : state) {
    dd::obs::TraceSpan outer("bench_outer");
    dd::obs::TraceSpan inner("bench_inner");
  }
}
BENCHMARK(BM_NestedTraceSpans);

// Counter increments with the FTDC sampler live at its production
// cadence: the sampler only reads the registry every period, so the
// writer-side cost must match BM_CounterIncrement within noise. This is
// the acceptance gate for "telemetry adds no measurable hot-path cost".
void BM_CounterIncrementWithSampler(benchmark::State& state) {
  static std::unique_ptr<dd::obs::MetricsSampler> sampler = [] {
    dd::obs::SamplerOptions options;
    options.period_ms = 100;
    return std::move(dd::obs::MetricsSampler::Start(std::move(options)))
        .value();
  }();
  dd::obs::Counter& counter =
      dd::obs::MetricsRegistry::Global().GetCounter("bench.sampled_counter");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrementWithSampler)->Threads(1)->Threads(4);

// Scrape-side cost: snapshot the whole registry and render the
// Prometheus text exposition. Runs on the server thread, so it only
// needs to be cheap relative to the scrape interval (seconds).
void BM_PrometheusRender(benchmark::State& state) {
  for (auto _ : state) {
    std::string text = dd::obs::MetricsSnapshotToPrometheus(
        dd::obs::MetricsRegistry::Global().Snapshot());
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_PrometheusRender);

// One sampler tick: snapshot, flatten, delta-encode into the ring.
void BM_SamplerSampleOnce(benchmark::State& state) {
  dd::obs::SamplerOptions options;
  options.period_ms = 1000000;  // Tick manually; the thread stays idle.
  auto sampler = std::move(dd::obs::MetricsSampler::Start(options)).value();
  for (auto _ : state) {
    sampler->SampleOnce();
  }
  benchmark::DoNotOptimize(sampler->frames());
}
BENCHMARK(BM_SamplerSampleOnce);

// A log statement below the runtime threshold: one relaxed load, the
// stream operands are never evaluated.
void BM_LogSuppressed(benchmark::State& state) {
  dd::obs::SetLogLevel(dd::obs::LogLevel::kError);
  std::uint64_t n = 0;
  for (auto _ : state) {
    DD_LOG(INFO) << "suppressed " << ++n;
  }
  benchmark::DoNotOptimize(n);
  dd::obs::ReloadLogLevelFromEnv();
}
BENCHMARK(BM_LogSuppressed);

// DD_VLOG without -DDD_ENABLE_VLOG: must compile to nothing.
void BM_VlogCompiledOut(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    DD_VLOG(1) << "never " << ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_VlogCompiledOut);

// The disabled pool-observer fast path: the one atomic load per
// ParallelFor invocation (plus a branch per chunk on the snapshotted
// pointer) that the worker pool pays when pool stats are off. Budget:
// <= 2 ns — same bar as the EXPLAIN active check below.
void BM_PoolObserverDisabledCheck(benchmark::State& state) {
  dd::obs::PoolStatsCollector::Global().Disable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::GetPoolObserver());
  }
}
BENCHMARK(BM_PoolObserverDisabledCheck)->Threads(1)->Threads(4);

// Enabled per-chunk recording: two clock reads happen in the pool; here
// we isolate the collector's seqlock ring append + live counter bumps.
void BM_PoolStatsOnChunkEnabled(benchmark::State& state) {
  dd::obs::PoolStatsCollector& collector =
      dd::obs::PoolStatsCollector::Global();
  dd::PoolChunkEvent event{};
  event.phase = "bench_pool";
  event.invocation = 1;
  event.chunk = 0;
  event.begin = 0;
  event.end = 64;
  event.start_ns = 1000;
  event.end_ns = 2000;
  event.caller = true;
  for (auto _ : state) {
    collector.OnChunk(event);
  }
  collector.Reset();
}
BENCHMARK(BM_PoolStatsOnChunkEnabled);

// The disabled-recorder fast path that every instrumented call site in
// core/pa.cc pays when EXPLAIN is off: one relaxed load and a branch.
// This is the "disabled costs nothing" half of the DESIGN.md §11
// contract; the enabled half is measured end-to-end below.
void BM_ExplainDisabledActiveCheck(benchmark::State& state) {
  dd::obs::ExplainRecorder::Global().Disable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::obs::ExplainRecorder::Active());
  }
}
BENCHMARK(BM_ExplainDisabledActiveCheck)->Threads(1)->Threads(4);

// Per-candidate cost of an enabled recorder at the CI sampling rate:
// exact waterfall atomics every call, ring retention for every 64th
// event plus the forced keeps.
void BM_ExplainRecordEvaluated(benchmark::State& state) {
  dd::obs::ExplainRecorder& recorder = dd::obs::ExplainRecorder::Global();
  dd::obs::ExplainConfig config;
  config.sample_every = 64;
  config.ring_capacity = 1 << 12;
  recorder.Enable(config);
  recorder.SetRhsGeometry(2, 10);
  const std::uint32_t lhs_seq = recorder.BeginLhs({5, 5}, 100, 2000, 0.0,
                                                  /*advanced=*/false);
  std::uint32_t rhs_index = 0;
  double confidence = 0.05;
  for (auto _ : state) {
    recorder.RecordEvaluated(lhs_seq, rhs_index, rhs_index, 40, confidence,
                             0.5, confidence * 0.5, 0.4,
                             dd::obs::ExplainBound::kInitial,
                             /*offered=*/false, /*eval_ns=*/0.0);
    rhs_index = (rhs_index + 1) % 121;
    confidence += 0.001;
    if (confidence > 0.35) confidence = 0.05;
  }
  recorder.Disable();
}
BENCHMARK(BM_ExplainRecordEvaluated);

// End-to-end recorder overhead on a real determination (Rule 3,
// restaurant) at --explain_sample=64 — the acceptance gate is < 5%
// determiner slowdown. Reported as a BENCH_JSON line so CI can collect
// it alongside the google-benchmark table.
int ReportExplainOverhead() {
  const std::size_t pairs = dd::bench::BenchPairs(8000);
  dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(3, pairs);
  dd::DetermineOptions opts = dd::bench::ApproachOptions("DAP+PAP");

  auto timed_run = [&](bool enabled) {
    if (enabled) {
      dd::obs::ExplainConfig config;
      config.sample_every = 64;
      dd::obs::ExplainRecorder::Global().Enable(config);
    }
    const auto start = std::chrono::steady_clock::now();
    auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (enabled) dd::obs::ExplainRecorder::Global().Disable();
    if (!result.ok()) {
      std::fprintf(stderr, "explain overhead run: %s\n",
                   result.status().ToString().c_str());
      return -1.0;
    }
    return elapsed;
  };

  // Warm both paths once (provider caches, page faults), then take the
  // minimum of 9 alternating reps per path: the minimum estimates the
  // true cost best when scheduler noise only ever adds time.
  if (timed_run(false) < 0.0 || timed_run(true) < 0.0) return 1;
  double off_s = 1e30;
  double on_s = 1e30;
  for (int rep = 0; rep < 9; ++rep) {
    const double off = timed_run(false);
    const double on = timed_run(true);
    if (off < 0.0 || on < 0.0) return 1;
    off_s = std::min(off_s, off);
    on_s = std::min(on_s, on);
  }
  const double overhead = off_s > 0.0 ? on_s / off_s - 1.0 : 0.0;
  std::printf("\n%s: explain off %.6fs, on(sample=64) %.6fs, "
              "overhead %+.2f%%\n",
              w.label.c_str(), off_s, on_s, overhead * 100.0);
  std::printf(
      "BENCH_JSON {\"bench\": \"micro_obs_explain\", \"pairs\": %zu, "
      "\"sample_every\": 64, \"off_s\": %.6f, \"on_s\": %.6f, "
      "\"overhead\": %.4f}\n",
      w.matching.num_tuples(), off_s, on_s, overhead);
  std::fflush(stdout);
  return 0;
}

// The ISSUE acceptance number for the pool-observer hook: per-chunk
// disabled-path cost, measured as the exact instruction sequence the
// pool runs when stats are off (observer load + null test). Reported
// as a BENCH_JSON line with the budget so CI trends it.
int ReportPoolStatsOverhead() {
  dd::obs::PoolStatsCollector& collector =
      dd::obs::PoolStatsCollector::Global();
  collector.Disable();
  constexpr std::uint64_t kIters = 1 << 25;
  std::uint64_t hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    if (dd::GetPoolObserver() != nullptr) ++hits;
    benchmark::DoNotOptimize(hits);
  }
  const double disabled_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      static_cast<double>(kIters);

  collector.Enable();
  collector.Reset();
  dd::PoolChunkEvent event{};
  event.phase = "bench_pool_overhead";
  event.end = 64;
  event.end_ns = 1000;
  constexpr std::uint64_t kEnabledIters = 1 << 20;
  start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kEnabledIters; ++i) {
    event.invocation = i;
    collector.OnChunk(event);
  }
  const double enabled_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      static_cast<double>(kEnabledIters);
  collector.Disable();
  collector.Reset();

  std::printf("\npool observer: disabled check %.3f ns (budget 2 ns), "
              "enabled ring append %.1f ns\n",
              disabled_ns, enabled_ns);
  std::printf(
      "BENCH_JSON {\"bench\": \"micro_obs_pool\", \"iters\": %llu, "
      "\"disabled_check_ns\": %.3f, \"enabled_record_ns\": %.3f, "
      "\"budget_ns\": 2.0}\n",
      static_cast<unsigned long long>(kIters), disabled_ns, enabled_ns);
  std::fflush(stdout);
  return disabled_ns <= 2.0 ? 0 : 1;
}

// Flight-recorder record path with recording on: clock read + 56-byte
// ring slot write + release store.
void BM_FlightRecordEnabled(benchmark::State& state) {
  dd::obs::diag::FlightRecorder::Enable(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    dd::obs::diag::FlightRecord(dd::obs::diag::EventType::kCustom, "bench",
                                ++i, 0);
  }
  if (state.thread_index() == 0) dd::obs::diag::FlightRecorder::Disable();
}
BENCHMARK(BM_FlightRecordEnabled)->Threads(1)->Threads(4);

// The always-on gate every instrumented call site pays when diagnostics
// are off: one relaxed load and a branch.
void BM_FlightRecordDisabled(benchmark::State& state) {
  dd::obs::diag::FlightRecorder::Disable();
  std::uint64_t i = 0;
  for (auto _ : state) {
    dd::obs::diag::FlightRecord(dd::obs::diag::EventType::kCustom, "bench",
                                ++i, 0);
  }
  benchmark::DoNotOptimize(i);
}
BENCHMARK(BM_FlightRecordDisabled);

// The ISSUE acceptance numbers for the flight recorder: <= 50 ns per
// recorded event, <= 2 ns for the disabled gate. Hard-gated like the
// pool-observer budget so CI fails on regression, and reported as a
// BENCH_JSON line so the perf harness trends it.
int ReportFlightRecorderOverhead() {
  using dd::obs::diag::EventType;
  using dd::obs::diag::FlightRecord;
  using dd::obs::diag::FlightRecorder;

  FlightRecorder::Disable();
  constexpr std::uint64_t kDisabledIters = 1 << 25;
  std::uint64_t i = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t n = 0; n < kDisabledIters; ++n) {
    FlightRecord(EventType::kCustom, "gate", ++i, 0);
    benchmark::DoNotOptimize(i);
  }
  const double disabled_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      static_cast<double>(kDisabledIters);

  FlightRecorder::Enable(1024);
  FlightRecorder::ResetForTest();
  constexpr std::uint64_t kEnabledIters = 1 << 22;
  start = std::chrono::steady_clock::now();
  for (std::uint64_t n = 0; n < kEnabledIters; ++n) {
    FlightRecord(EventType::kCustom, "record", n, 0);
  }
  const double enabled_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      static_cast<double>(kEnabledIters);
  const std::uint64_t recorded = FlightRecorder::TotalRecorded();
  FlightRecorder::Disable();

  std::printf("\nflight recorder: record %.1f ns (budget 50 ns), "
              "disabled gate %.3f ns (budget 2 ns), recorded %llu\n",
              enabled_ns, disabled_ns,
              static_cast<unsigned long long>(recorded));
  std::printf(
      "BENCH_JSON {\"bench\": \"micro_obs_flightrec\", \"iters\": %llu, "
      "\"record_ns\": %.3f, \"disabled_gate_ns\": %.3f, "
      "\"record_budget_ns\": 50.0, \"gate_budget_ns\": 2.0}\n",
      static_cast<unsigned long long>(kEnabledIters), enabled_ns, disabled_ns);
  std::fflush(stdout);
  if (recorded != kEnabledIters) return 1;  // Lost events: broken ring.
  return (enabled_ns <= 50.0 && disabled_ns <= 2.0) ? 0 : 1;
}

// The ISSUE acceptance numbers for the sampling profiler (DESIGN.md
// §16): < 2% end-to-end determiner slowdown with a 99 Hz capture
// running, and <= 2 ns for the ProfilerActive() disabled gate — the
// only cost the process pays when no capture is live. Hard-gated like
// the flight-recorder budgets, reported as a BENCH_JSON line.
int ReportProfilerOverhead() {
  // Disabled gate: one relaxed atomic load.
  constexpr std::uint64_t kGateIters = 1 << 25;
  auto start = std::chrono::steady_clock::now();
  std::uint64_t active = 0;
  for (std::uint64_t n = 0; n < kGateIters; ++n) {
    if (dd::obs::prof::ProfilerActive()) ++active;
    benchmark::DoNotOptimize(active);
  }
  const double disabled_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      static_cast<double>(kGateIters);

  // Larger workload than the EXPLAIN gate: resolving a 2% bound needs
  // runs long enough that scheduler jitter (~1 ms on a busy CI host)
  // is well under the budget.
  const std::size_t pairs = dd::bench::BenchPairs(30000);
  dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(3, pairs);
  dd::DetermineOptions opts = dd::bench::ApproachOptions("DAP+PAP");

  auto timed_run = [&](bool profiled) {
    if (profiled) {
      dd::obs::prof::ProfilerOptions options;
      options.hz = 99;
      const dd::Status started =
          dd::obs::prof::Profiler::Global().Start(options);
      if (!started.ok()) {
        std::fprintf(stderr, "profiler start: %s\n",
                     started.ToString().c_str());
        return -1.0;
      }
    }
    const auto run_start = std::chrono::steady_clock::now();
    auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    if (profiled) dd::obs::prof::Profiler::Global().Stop();
    if (!result.ok()) {
      std::fprintf(stderr, "profiler overhead run: %s\n",
                   result.status().ToString().c_str());
      return -1.0;
    }
    return elapsed;
  };

  // Same protocol as the EXPLAIN gate: warm both paths, then min of 9
  // alternating reps per path — scheduler noise only ever adds time.
  if (timed_run(false) < 0.0 || timed_run(true) < 0.0) return 1;
  double off_s = 1e30;
  double on_s = 1e30;
  for (int rep = 0; rep < 9; ++rep) {
    const double off = timed_run(false);
    const double on = timed_run(true);
    if (off < 0.0 || on < 0.0) return 1;
    off_s = std::min(off_s, off);
    on_s = std::min(on_s, on);
  }
  const double overhead = off_s > 0.0 ? on_s / off_s - 1.0 : 0.0;
  std::printf("\nprofiler: off %.6fs, on(99 Hz) %.6fs, overhead %+.2f%% "
              "(budget 2%%), disabled gate %.3f ns (budget 2 ns)\n",
              off_s, on_s, overhead * 100.0, disabled_ns);
  std::printf(
      "BENCH_JSON {\"bench\": \"micro_obs_prof\", \"pairs\": %zu, "
      "\"hz\": 99, \"off_s\": %.6f, \"on_s\": %.6f, \"overhead\": %.4f, "
      "\"disabled_gate_ns\": %.3f, \"overhead_budget\": 0.02, "
      "\"gate_budget_ns\": 2.0}\n",
      w.matching.num_tuples(), off_s, on_s, overhead, disabled_ns);
  std::fflush(stdout);
  return (overhead < 0.02 && disabled_ns <= 2.0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int explain_rc = ReportExplainOverhead();
  const int pool_rc = ReportPoolStatsOverhead();
  const int flight_rc = ReportFlightRecorderOverhead();
  const int prof_rc = ReportProfilerOverhead();
  if (explain_rc != 0) return explain_rc;
  if (pool_rc != 0) return pool_rc;
  if (flight_rc != 0) return flight_rc;
  return prof_rc;
}
