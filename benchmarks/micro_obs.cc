// Micro-benchmarks for the observability primitives (src/obs): the
// numbers here bound the per-event cost that instrumentation adds to
// the determination hot paths. The budget (DESIGN.md §Observability) is
// a few nanoseconds per counter increment / suppressed log statement
// and tens of nanoseconds per aggregated trace span, so that
// whole-pipeline overhead stays within noise (<= 3% on micro_counting).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>

#include "obs/export/prometheus.h"
#include "obs/export/sampler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

void BM_CounterIncrement(benchmark::State& state) {
  dd::obs::Counter& counter =
      dd::obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  dd::obs::Gauge& gauge =
      dd::obs::MetricsRegistry::Global().GetGauge("bench.gauge");
  double v = 0.0;
  for (auto _ : state) {
    gauge.Set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  dd::obs::Histogram& hist = dd::obs::MetricsRegistry::Global().GetHistogram(
      "bench.histogram", dd::obs::DefaultLatencyBoundsMs());
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v);
    v += 0.37;
    if (v > 2000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4);

// Registry lookup by name: not for hot loops (linear scan under a
// mutex) — handles should be cached, as every instrumented call site
// does with a function-local static.
void BM_RegistryLookup(benchmark::State& state) {
  dd::obs::MetricsRegistry& registry = dd::obs::MetricsRegistry::Global();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&registry.GetCounter("bench.lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

// Aggregated span enter/exit on an existing node (the steady-state cost
// of a per-LHS span): two clock reads plus two relaxed fetch_adds.
void BM_TraceSpanEnabled(benchmark::State& state) {
  dd::obs::Tracer::Global().set_enabled(true);
  for (auto _ : state) {
    dd::obs::TraceSpan span("bench_span");
  }
}
BENCHMARK(BM_TraceSpanEnabled)->Threads(1)->Threads(4);

void BM_TraceSpanDisabled(benchmark::State& state) {
  dd::obs::Tracer::Global().set_enabled(false);
  for (auto _ : state) {
    dd::obs::TraceSpan span("bench_span_off");
  }
  dd::obs::Tracer::Global().set_enabled(true);
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_NestedTraceSpans(benchmark::State& state) {
  dd::obs::Tracer::Global().set_enabled(true);
  for (auto _ : state) {
    dd::obs::TraceSpan outer("bench_outer");
    dd::obs::TraceSpan inner("bench_inner");
  }
}
BENCHMARK(BM_NestedTraceSpans);

// Counter increments with the FTDC sampler live at its production
// cadence: the sampler only reads the registry every period, so the
// writer-side cost must match BM_CounterIncrement within noise. This is
// the acceptance gate for "telemetry adds no measurable hot-path cost".
void BM_CounterIncrementWithSampler(benchmark::State& state) {
  static std::unique_ptr<dd::obs::MetricsSampler> sampler = [] {
    dd::obs::SamplerOptions options;
    options.period_ms = 100;
    return std::move(dd::obs::MetricsSampler::Start(std::move(options)))
        .value();
  }();
  dd::obs::Counter& counter =
      dd::obs::MetricsRegistry::Global().GetCounter("bench.sampled_counter");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrementWithSampler)->Threads(1)->Threads(4);

// Scrape-side cost: snapshot the whole registry and render the
// Prometheus text exposition. Runs on the server thread, so it only
// needs to be cheap relative to the scrape interval (seconds).
void BM_PrometheusRender(benchmark::State& state) {
  for (auto _ : state) {
    std::string text = dd::obs::MetricsSnapshotToPrometheus(
        dd::obs::MetricsRegistry::Global().Snapshot());
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_PrometheusRender);

// One sampler tick: snapshot, flatten, delta-encode into the ring.
void BM_SamplerSampleOnce(benchmark::State& state) {
  dd::obs::SamplerOptions options;
  options.period_ms = 1000000;  // Tick manually; the thread stays idle.
  auto sampler = std::move(dd::obs::MetricsSampler::Start(options)).value();
  for (auto _ : state) {
    sampler->SampleOnce();
  }
  benchmark::DoNotOptimize(sampler->frames());
}
BENCHMARK(BM_SamplerSampleOnce);

// A log statement below the runtime threshold: one relaxed load, the
// stream operands are never evaluated.
void BM_LogSuppressed(benchmark::State& state) {
  dd::obs::SetLogLevel(dd::obs::LogLevel::kError);
  std::uint64_t n = 0;
  for (auto _ : state) {
    DD_LOG(INFO) << "suppressed " << ++n;
  }
  benchmark::DoNotOptimize(n);
  dd::obs::ReloadLogLevelFromEnv();
}
BENCHMARK(BM_LogSuppressed);

// DD_VLOG without -DDD_ENABLE_VLOG: must compile to nothing.
void BM_VlogCompiledOut(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    DD_VLOG(1) << "never " << ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_VlogCompiledOut);

}  // namespace

BENCHMARK_MAIN();
