// Regenerates paper Table V: time cost of the mid-first vs top-first
// processing orders in C_Y, under DA+PAP and DAP+PAP, for l = 1..7 on
// Rule 1. Expected shape: mid-first wins for DA+PAP (bound starts at
// 0); top-first wins for DAP+PAP (advanced bound available); DAP+PAP
// top-first is the overall fastest.

#include <cstdio>

#include "benchmarks/bench_util.h"

int main() {
  std::printf("=== Table V: time cost (s) of processing orders in C_Y "
              "(Rule 1) ===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("fixed |M| = %zu\n\n", pairs);
  dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(1, pairs);

  struct Config {
    const char* header;
    dd::LhsAlgorithm lhs;
    dd::ProcessingOrder order;
  };
  const Config configs[] = {
      {"mid-first DA", dd::LhsAlgorithm::kDa, dd::ProcessingOrder::kMidFirst},
      {"mid-first DAP", dd::LhsAlgorithm::kDap, dd::ProcessingOrder::kMidFirst},
      {"top-first DA", dd::LhsAlgorithm::kDa, dd::ProcessingOrder::kTopFirst},
      {"top-first DAP", dd::LhsAlgorithm::kDap, dd::ProcessingOrder::kTopFirst},
  };

  std::printf("%4s", "l");
  for (const auto& c : configs) std::printf(" %14s", c.header);
  std::printf("\n");
  for (std::size_t l = 1; l <= 7; ++l) {
    std::printf("%4zu", l);
    for (const auto& c : configs) {
      dd::DetermineOptions opts;
      opts.lhs_algorithm = c.lhs;
      opts.rhs_algorithm = dd::RhsAlgorithm::kPap;
      opts.order = c.order;
      opts.top_l = l;
      auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
      if (!result.ok()) return 1;
      std::printf(" %13.3fs", result->elapsed_seconds);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nexpected shape (paper): with DA the mid-first order wins; "
              "with DAP top-first wins\nand DAP+PAP top-first is the lowest "
              "overall.\n");
  return 0;
}
