// Ablation: sensitivity of the parameter-free determination to the
// expected-utility prior (DESIGN.md §5). Sweeps the prior equivalent-
// sample-size fraction h and the CQ̄ estimation sample size, and
// reports the determined pattern plus its violation-detection
// F-measure on Rule 3. The paper's claim is that no user-facing
// parameter is needed; this quantifies how robust the answer is to the
// two internal constants that replace user parameters.

#include <cstdio>

#include "benchmarks/bench_util.h"
#include "data/corruptor.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "detect/violation_detector.h"

int main() {
  std::printf("=== Ablation: expected-utility prior (Rule 3) ===\n");
  dd::RestaurantOptions gopts;
  gopts.num_entities = 150;
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  dd::RuleSpec rule{{"name", "address"}, {"city", "type"}};
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = dd::bench::BenchPairs();
  auto matching =
      dd::BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  if (!matching.ok()) return 1;

  dd::CorruptorOptions copts;
  copts.corrupt_fraction = 0.08;
  auto corrupted = dd::InjectViolations(data, {"city"}, copts);
  if (!corrupted.ok()) return 1;
  dd::MatchingOptions detect_opts = mopts;
  detect_opts.max_pairs = 0;
  auto dirty_matching = dd::BuildMatchingRelation(
      corrupted->dirty, rule.AllAttributes(), detect_opts);
  if (!dirty_matching.ok()) return 1;
  auto dirty_rule = dd::ResolveRule(*dirty_matching, rule);
  if (!dirty_rule.ok()) return 1;

  auto evaluate = [&](const dd::DetermineOptions& options, const char* label) {
    auto result = dd::DetermineThresholds(*matching, rule, options);
    if (!result.ok() || result->patterns.empty()) {
      std::printf("%-24s error\n", label);
      return;
    }
    const auto& best = result->patterns.front();
    dd::PairList found = dd::DetectViolationsIn(*dirty_matching, *dirty_rule,
                                                best.pattern);
    dd::DetectionQuality q =
        dd::EvaluateDetection(found, corrupted->truth_pairs);
    std::printf("%-24s %-22s CQ=%.3f prior=%.3f U=%.4f F=%.4f\n", label,
                dd::PatternToString(best.pattern).c_str(),
                best.measures.confidence * best.measures.quality,
                result->prior_mean_cq, best.utility, q.f_measure);
  };

  std::printf("\nprior strength h (equivalent sample fraction):\n");
  for (double h : {0.005, 0.02, 0.05, 0.1, 0.2}) {
    auto options = dd::bench::ApproachOptions("DAP+PAP");
    options.utility.prior_strength = h;
    char label[32];
    std::snprintf(label, sizeof(label), "h = %.3f", h);
    evaluate(options, label);
  }

  std::printf("\nCQ-bar estimation sample size:\n");
  for (std::size_t sample : {25u, 50u, 100u, 200u, 400u}) {
    auto options = dd::bench::ApproachOptions("DAP+PAP");
    options.prior_sample_size = sample;
    char label[32];
    std::snprintf(label, sizeof(label), "sample = %zu", sample);
    evaluate(options, label);
  }

  std::printf("\nexpected shape: the chosen pattern and its detection\n"
              "F-measure are stable across a wide range of both internal\n"
              "constants — the determination is effectively parameter-free.\n");
  return 0;
}
