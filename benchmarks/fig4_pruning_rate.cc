// Regenerates paper Figure 4: pruning power of DA vs DAP over the
// answer size l (both with PAP on the dependent side). The pruning rate
// is the fraction of C_X × C_Y candidates whose confidence computation
// was avoided. Expected shape: DAP >= DA at every l; both decrease as l
// grows.

#include <cstdio>

#include "benchmarks/bench_util.h"

int main() {
  std::printf("=== Figure 4: pruning power (pruning rate over l) ===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("fixed |M| = %zu\n", pairs);

  for (const auto& rule : dd::bench::kRules) {
    dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(rule.number, pairs);
    std::printf("\n%s\n", rule.label);
    std::printf("%4s %12s %12s\n", "l", "DA rate", "DAP rate");
    for (std::size_t l = 1; l <= 7; ++l) {
      // Both sides use PAP with the same (mid-first) C_Y order so the
      // comparison isolates the advanced bound; Table V covers orders.
      auto da_opts = dd::bench::ApproachOptions("DA+PAP", l);
      auto dap_opts = da_opts;
      dap_opts.lhs_algorithm = dd::LhsAlgorithm::kDap;
      auto da = dd::DetermineThresholds(w.matching, w.rule, da_opts);
      auto dap = dd::DetermineThresholds(w.matching, w.rule, dap_opts);
      if (!da.ok() || !dap.ok()) return 1;
      std::printf("%4zu %12.4f %12.4f\n", l, da->stats.PruningRate(),
                  dap->stats.PruningRate());
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape (paper): DAP pruning rate >= DA at every l; "
              "rates decline as l grows.\n");
  return 0;
}
