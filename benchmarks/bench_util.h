// Shared workload setup for the per-table / per-figure benchmark
// harnesses. Each harness regenerates one table or figure of the
// paper's evaluation section (§VI) on the synthetic stand-ins for the
// Cora / Restaurant / CiteSeer data sets (see DESIGN.md §3).
//
// Environment knobs (all harnesses):
//   DD_BENCH_PAIRS    — matching-relation size for fixed-size experiments
//                       (default 20000)
//   DD_BENCH_SCALE    — multiplies every data size (default 1.0)
//   DD_BENCH_THREADS  — comma list of worker-pool sizes for the
//                       thread-sweep harnesses, e.g. "1,2,4,8"
// All harnesses additionally accept --threads N (equivalent to
// DD_THREADS=N): it sets the process-wide DefaultThreads().

#ifndef DD_BENCHMARKS_BENCH_UTIL_H_
#define DD_BENCHMARKS_BENCH_UTIL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/determiner.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "matching/matching_relation.h"

namespace dd::bench {

// The four rules of the paper's experiments.
struct RuleId {
  int number;             // 1..4
  const char* label;      // "Rule 1: cora(author, title -> venue, year)"
};

inline constexpr RuleId kRules[] = {
    {1, "Rule 1: cora(author, title -> venue, year)"},
    {2, "Rule 2: cora(venue -> address, publisher, editor)"},
    {3, "Rule 3: restaurant(name, address -> city, type)"},
    {4, "Rule 4: citeseer(address, affiliation, description -> subject)"},
};

struct RuleWorkload {
  std::string label;
  RuleSpec rule;
  MatchingRelation matching;
};

// Builds the matching relation for one of the paper's rules with |M| =
// max_pairs matching tuples (dmax = 10, deterministic seeds).
RuleWorkload MakeRuleWorkload(int rule_number, std::size_t max_pairs);

// Reads DD_BENCH_PAIRS (default `fallback`), scaled by DD_BENCH_SCALE.
std::size_t BenchPairs(std::size_t fallback = 20000);

// Applies DD_BENCH_SCALE to a size.
std::size_t Scaled(std::size_t size);

// Applies a `--threads N` argument (any position) to the process-wide
// worker pool via SetDefaultThreads. Call first in main().
void ApplyThreadsArg(int argc, char** argv);

// Thread counts for the thread-sweep harnesses: the DD_BENCH_THREADS
// comma list when set, else `fallback` (empty fallback = {1, 2, 4, 8}).
std::vector<std::size_t> ThreadSweep(
    std::vector<std::size_t> fallback = {1, 2, 4, 8});

// Data-size sweep for the scalability figures (paper: 100k..1m; the
// defaults here are 20k..100k so the whole suite runs in minutes —
// raise DD_BENCH_SCALE to reproduce the paper's sizes).
std::vector<std::size_t> ScalabilitySizes();

// DetermineOptions for the named approach: "DA+PA", "DA+PAP", "DAP+PAP"
// (DA+PAP uses mid-first, DAP+PAP top-first, per the paper §V).
DetermineOptions ApproachOptions(const std::string& approach,
                                 std::size_t top_l = 1);

// Clears the global tracer and metrics registry so the next measured
// run's phase timings are isolated from setup work and earlier runs.
void ResetPhaseTimings();

// One-line JSON object of per-phase wall seconds under the "determine"
// span of the global tracer, e.g.
//   {"total_s": 1.23, "provider_build_s": 0.04, "prior_estimation_s":
//    0.11, "search_s": 1.07}
// Returns "{}" when no determine span has been recorded.
std::string PhaseTimingsJson();

// One-line JSON object with percentile estimates for every non-empty
// histogram in the global metrics registry, e.g.
//   {"pa.evaluated_per_lhs": {"count": 77, "p50": 9.2, "p95": 14.9,
//    "p99": 15.8}}
// Returns "{}" when no histogram has observations.
std::string HistogramPercentilesJson();

}  // namespace dd::bench

#endif  // DD_BENCHMARKS_BENCH_UTIL_H_
