// Regenerates paper Figure 3: "Generation for dependent attributes" —
// time of PA vs PAP as the answer size l grows from 1 to 7, on all four
// rules (fixed data size). Expected shape: PA flat in l (it always
// scans all of C_Y); PAP much lower but increasing with l (a relaxed
// l-th-largest bound weakens pruning).

#include <cstdio>

#include "benchmarks/bench_util.h"

int main() {
  std::printf("=== Figure 3: generation for dependent attributes "
              "(PA vs PAP over l) ===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("fixed |M| = %zu\n", pairs);

  for (const auto& rule : dd::bench::kRules) {
    dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(rule.number, pairs);
    std::printf("\n%s\n", rule.label);
    std::printf("%4s %12s %12s %16s %16s\n", "l", "PA(s)", "PAP(s)",
                "PA evaluated", "PAP evaluated");
    for (std::size_t l = 1; l <= 7; ++l) {
      auto pa_opts = dd::bench::ApproachOptions("DA+PA", l);
      auto pap_opts = dd::bench::ApproachOptions("DA+PAP", l);
      auto pa = dd::DetermineThresholds(w.matching, w.rule, pa_opts);
      auto pap = dd::DetermineThresholds(w.matching, w.rule, pap_opts);
      if (!pa.ok() || !pap.ok()) return 1;
      std::printf("%4zu %11.3fs %11.3fs %16zu %16zu\n", l,
                  pa->elapsed_seconds, pap->elapsed_seconds,
                  pa->stats.rhs.evaluated, pap->stats.rhs.evaluated);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape (paper): PA constant in l; PAP below PA and "
              "increasing with l.\n");
  return 0;
}
