// Ablation: paper-faithful O(M)-per-count scanning vs the prefix-sum
// grid extension (DESIGN.md §5), end to end. Runs the full DAP+PAP
// determination on every rule under three providers —
//   scan         re-scan all of M per count (paper's cost model)
//   scan_subset  scan only the tuples satisfying ϕ[X]
//   grid         O(M + d^c) build, O(1) counts
// — and verifies all three return the same maximum expected utility.

#include <cmath>
#include <cstdio>

#include "benchmarks/bench_util.h"

int main() {
  std::printf("=== Ablation: measure provider (DAP+PAP, largest U) ===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("fixed |M| = %zu\n", pairs);
  const char* providers[] = {"scan", "scan_subset", "grid"};

  for (const auto& rule : dd::bench::kRules) {
    dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(rule.number, pairs);
    std::printf("\n%s\n", rule.label);
    std::printf("%-12s %12s %16s %12s\n", "provider", "time", "rows scanned",
                "best U");
    double reference = -1.0;
    bool mismatch = false;
    for (const char* provider : providers) {
      auto opts = dd::bench::ApproachOptions("DAP+PAP");
      opts.provider = provider;
      auto result = dd::DetermineThresholds(w.matching, w.rule, opts);
      if (!result.ok() || result->patterns.empty()) {
        std::printf("%-12s %12s\n", provider, "error");
        continue;
      }
      const double utility = result->patterns.front().utility;
      if (reference < 0.0) {
        reference = utility;
      } else if (std::fabs(utility - reference) > 1e-9) {
        mismatch = true;
      }
      std::printf("%-12s %11.3fs %16llu %12.4f\n", provider,
                  result->elapsed_seconds,
                  static_cast<unsigned long long>(
                      result->provider_stats.rows_scanned),
                  utility);
    }
    std::printf("providers agree on the optimum: %s\n",
                mismatch ? "NO (BUG)" : "yes");
  }
  std::printf("\nexpected shape: grid >> scan_subset > scan in speed, with\n"
              "identical answers — the pruning algorithms matter exactly\n"
              "when counting is expensive.\n");
  return 0;
}
