// Regenerates paper Table III: "Effectiveness of example results from
// Rule 1" — the top-6 determined patterns on cora(author, title ->
// venue, year) plus the FD baseline, each with its measures (S, C, Q,
// Ū) and violation-detection accuracy (precision / recall / F-measure)
// against randomly injected violations.

#include <cstdio>

#include "benchmarks/bench_util.h"
#include "core/determiner.h"
#include "data/corruptor.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "detect/violation_detector.h"

namespace {

void PrintRow(const char* name, const dd::Pattern& pattern,
              const dd::Measures& m, double utility,
              const dd::DetectionQuality& q) {
  std::string lhs = dd::LevelsToString(pattern.lhs);
  std::string rhs = dd::LevelsToString(pattern.rhs);
  std::printf("%-5s %-14s %-14s %8.4f %8.4f %6.2f %8.4f | %9.4f %7.4f %9.4f\n",
              name, lhs.c_str(), rhs.c_str(), m.support, m.confidence,
              m.quality, utility, q.precision, q.recall, q.f_measure);
}

}  // namespace

int main() {
  std::printf("=== Table III: effectiveness of example results from Rule 1 "
              "===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("workload: synthetic cora, |M| = %zu, dmax = 10, seed = 1\n\n",
              pairs);

  // Clean data + matching relation.
  dd::CoraOptions gopts;
  gopts.num_entities = 160;
  dd::GeneratedData data = dd::GenerateCora(gopts);
  dd::RuleSpec rule{{"author", "title"}, {"venue", "year"}};
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = pairs;
  // The paper computes edit distance with q-grams; that choice matters
  // for the short year field.
  mopts.metric_overrides["year"] = "qgram2";
  auto matching =
      dd::BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  if (!matching.ok()) return 1;

  // Top-6 patterns by expected utility (as in the paper's table).
  auto opts = dd::bench::ApproachOptions("DAP+PAP", /*top_l=*/6);
  auto determined = dd::DetermineThresholds(*matching, rule, opts);
  if (!determined.ok()) return 1;

  // Dirty copy with injected violations on the dependent attributes.
  dd::CorruptorOptions copts;
  copts.corrupt_fraction = 0.08;
  auto corrupted = dd::InjectViolations(data, rule.rhs, copts);
  if (!corrupted.ok()) return 1;
  std::printf("injected %zu ground-truth violating pairs\n\n",
              corrupted->truth_pairs.size());

  // Detection matching relation on the dirty instance (built once).
  dd::MatchingOptions detect_opts = mopts;
  detect_opts.max_pairs = 0;
  auto dirty_matching = dd::BuildMatchingRelation(
      corrupted->dirty, rule.AllAttributes(), detect_opts);
  if (!dirty_matching.ok()) return 1;
  auto dirty_rule = dd::ResolveRule(*dirty_matching, rule);
  if (!dirty_rule.ok()) return 1;

  auto clean_rule = dd::ResolveRule(*matching, rule);
  if (!clean_rule.ok()) return 1;
  dd::ScanMeasureProvider provider(*matching, *clean_rule);
  dd::UtilityOptions uopts;
  uopts.prior_mean_cq = determined->prior_mean_cq;

  std::printf("%-5s %-14s %-14s %8s %8s %6s %8s | %9s %7s %9s\n", "phi",
              "phi[X]", "phi[Y]", "S", "C", "Q", "utility", "precision",
              "recall", "f-measure");

  auto evaluate = [&](const char* name, const dd::Pattern& pattern,
                      double utility_hint, bool recompute_utility) {
    dd::Measures m = dd::ComputeMeasures(&provider, pattern, mopts.dmax);
    double utility =
        recompute_utility
            ? dd::ExpectedUtility(m.total, m.lhs_count, m.confidence,
                                  m.quality, uopts)
            : utility_hint;
    dd::PairList found =
        dd::DetectViolationsIn(*dirty_matching, *dirty_rule, pattern);
    dd::DetectionQuality q =
        dd::EvaluateDetection(found, corrupted->truth_pairs);
    PrintRow(name, pattern, m, utility, q);
  };

  int i = 0;
  for (const auto& p : determined->patterns) {
    char name[16];
    std::snprintf(name, sizeof(name), "phi%d", ++i);
    evaluate(name, p.pattern, p.utility, false);
  }
  evaluate("fd", dd::Pattern::Fd(rule.lhs.size(), rule.rhs.size()), 0.0,
           true);

  std::printf(
      "\nexpected shape (paper): f-measure broadly decreases with utility;\n"
      "FD has high Q but low support -> lowest utility and poor recall.\n");
  return 0;
}
