#include "benchmarks/bench_util.h"

#include <cmath>
#include <cstdlib>

#include "common/flags.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd::bench {

namespace {

double ScaleFactor() {
  const char* env = std::getenv("DD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

// Entities sized so the generated relation comfortably yields the
// requested number of pairs: N(N-1)/2 >= max_pairs needs N ~ sqrt(2P).
std::size_t EntitiesForPairs(std::size_t max_pairs, double rows_per_entity) {
  double rows_needed = 1.0 + std::sqrt(2.0 * static_cast<double>(max_pairs));
  std::size_t entities =
      static_cast<std::size_t>(rows_needed / rows_per_entity) + 2;
  return entities;
}

}  // namespace

std::size_t Scaled(std::size_t size) {
  return static_cast<std::size_t>(static_cast<double>(size) * ScaleFactor());
}

std::size_t BenchPairs(std::size_t fallback) {
  const char* env = std::getenv("DD_BENCH_PAIRS");
  std::size_t base = fallback;
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) base = static_cast<std::size_t>(v);
  }
  return Scaled(base);
}

void ApplyThreadsArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      const long v = std::atol(argv[i + 1]);
      if (v > 0) SetDefaultThreads(static_cast<std::size_t>(v));
      return;
    }
  }
}

std::vector<std::size_t> ThreadSweep(std::vector<std::size_t> fallback) {
  const char* env = std::getenv("DD_BENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    std::vector<std::size_t> sweep;
    for (const std::string& token : SplitFlagList(env)) {
      const long v = std::atol(token.c_str());
      if (v > 0) sweep.push_back(static_cast<std::size_t>(v));
    }
    if (!sweep.empty()) return sweep;
  }
  return fallback;
}

std::vector<std::size_t> ScalabilitySizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t base : {20000u, 40000u, 60000u, 80000u, 100000u}) {
    sizes.push_back(Scaled(base));
  }
  return sizes;
}

RuleWorkload MakeRuleWorkload(int rule_number, std::size_t max_pairs) {
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = max_pairs;
  mopts.seed = 1;

  switch (rule_number) {
    case 1: {
      CoraOptions gopts;
      gopts.num_entities = EntitiesForPairs(max_pairs, 3.5);
      GeneratedData data = GenerateCora(gopts);
      RuleSpec rule{{"author", "title"}, {"venue", "year"}};
      // The paper preprocesses with edit distance over q-grams; this
      // matters for short fields like year, where plain character edit
      // distance cannot separate distinct values.
      MatchingOptions rule_opts = mopts;
      rule_opts.metric_overrides["year"] = "qgram2";
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(),
                                     rule_opts);
      DD_CHECK(m.ok());
      return {kRules[0].label, rule, std::move(m).value()};
    }
    case 2: {
      CoraOptions gopts;
      gopts.num_entities = EntitiesForPairs(max_pairs, 3.5);
      GeneratedData data = GenerateCora(gopts);
      RuleSpec rule{{"venue"}, {"address", "publisher", "editor"}};
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(),
                                     mopts);
      DD_CHECK(m.ok());
      return {kRules[1].label, rule, std::move(m).value()};
    }
    case 3: {
      RestaurantOptions gopts;
      gopts.num_entities = EntitiesForPairs(max_pairs, 3.0);
      GeneratedData data = GenerateRestaurant(gopts);
      RuleSpec rule{{"name", "address"}, {"city", "type"}};
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(),
                                     mopts);
      DD_CHECK(m.ok());
      return {kRules[2].label, rule, std::move(m).value()};
    }
    case 4: {
      CiteseerOptions gopts;
      gopts.num_entities = EntitiesForPairs(max_pairs, 3.5);
      GeneratedData data = GenerateCiteseer(gopts);
      RuleSpec rule{{"address", "affiliation", "description"}, {"subject"}};
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(),
                                     mopts);
      DD_CHECK(m.ok());
      return {kRules[3].label, rule, std::move(m).value()};
    }
    default:
      DD_CHECK(false);
  }
  __builtin_unreachable();
}

void ResetPhaseTimings() {
  obs::Tracer::Global().Reset();
  obs::MetricsRegistry::Global().ResetAll();
}

std::string PhaseTimingsJson() {
  const obs::TraceSnapshot snap = obs::Tracer::Global().Snapshot();
  const obs::SpanStats* determine = snap.Find("determine");
  std::string out = "{";
  if (determine != nullptr) {
    out += StrFormat("\"total_s\": %.6f", determine->total_seconds);
    for (const obs::SpanStats& child : determine->children) {
      out += StrFormat(", \"%s_s\": %.6f", child.name.c_str(),
                       child.total_seconds);
    }
  }
  out += "}";
  return out;
}

std::string HistogramPercentilesJson() {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += h.name;
    out += StrFormat("\": {\"count\": %llu, \"p50\": %.4f, \"p95\": %.4f, "
                     "\"p99\": %.4f}",
                     static_cast<unsigned long long>(h.count),
                     obs::HistogramPercentile(h, 0.50),
                     obs::HistogramPercentile(h, 0.95),
                     obs::HistogramPercentile(h, 0.99));
  }
  out += "}";
  return out;
}

DetermineOptions ApproachOptions(const std::string& approach,
                                 std::size_t top_l) {
  DetermineOptions opts;
  opts.top_l = top_l;
  if (approach == "DA+PA") {
    opts.lhs_algorithm = LhsAlgorithm::kDa;
    opts.rhs_algorithm = RhsAlgorithm::kPa;
    opts.order = ProcessingOrder::kMidFirst;
  } else if (approach == "DA+PAP") {
    opts.lhs_algorithm = LhsAlgorithm::kDa;
    opts.rhs_algorithm = RhsAlgorithm::kPap;
    opts.order = ProcessingOrder::kMidFirst;  // Paper: mid-first for DA.
  } else if (approach == "DAP+PAP") {
    opts.lhs_algorithm = LhsAlgorithm::kDap;
    opts.rhs_algorithm = RhsAlgorithm::kPap;
    opts.order = ProcessingOrder::kTopFirst;  // Paper: top-first for DAP.
  } else {
    DD_CHECK(false);
  }
  return opts;
}

}  // namespace dd::bench
