// Micro-benchmarks of the distance metric substrate: exact vs banded
// Levenshtein, q-gram, Jaccard and cosine throughput on realistic
// attribute values.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "metric/metric.h"

namespace {

std::vector<std::string> SampleValues() {
  return {
      "West Wood Hotel",
      "Fifth Avenue, 61st Street",
      "5th Avenue, 61st St.",
      "Proceedings of the International Conference on Data Engineering",
      "Proc. of the Intl. Conf. on Data Engineering",
      "Department of Computer Science and Engineering, HKUST",
      "No.3, West Lake Road.",
      "#3, West Lake Rd.",
      "efficient discovery of functional dependencies from relational data",
  };
}

void BM_LevenshteinExact(benchmark::State& state) {
  dd::LevenshteinMetric lev;
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(lev.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_LevenshteinExact);

void BM_LevenshteinBanded(benchmark::State& state) {
  dd::LevenshteinMetric lev;
  const auto values = SampleValues();
  const double cap = static_cast<double>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(lev.BoundedDistance(a, b, cap));
    ++i;
  }
}
BENCHMARK(BM_LevenshteinBanded)->Arg(2)->Arg(10)->Arg(30);

void BM_QGram(benchmark::State& state) {
  dd::QGramMetric qgram(static_cast<std::size_t>(state.range(0)));
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(qgram.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_QGram)->Arg(2)->Arg(3);

void BM_Jaccard(benchmark::State& state) {
  dd::JaccardMetric jac;
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(jac.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_Jaccard);

void BM_Cosine(benchmark::State& state) {
  dd::CosineMetric cos;
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(cos.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_Cosine);

}  // namespace

BENCHMARK_MAIN();
