// Micro-benchmarks of the distance metric substrate: exact vs banded
// Levenshtein, q-gram, Jaccard and cosine throughput on realistic
// attribute values.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "metric/levenshtein.h"
#include "metric/metric.h"

namespace {

std::vector<std::string> SampleValues() {
  return {
      "West Wood Hotel",
      "Fifth Avenue, 61st Street",
      "5th Avenue, 61st St.",
      "Proceedings of the International Conference on Data Engineering",
      "Proc. of the Intl. Conf. on Data Engineering",
      "Department of Computer Science and Engineering, HKUST",
      "No.3, West Lake Road.",
      "#3, West Lake Rd.",
      "efficient discovery of functional dependencies from relational data",
  };
}

void BM_LevenshteinExact(benchmark::State& state) {
  dd::LevenshteinMetric lev;
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(lev.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_LevenshteinExact);

void BM_LevenshteinBanded(benchmark::State& state) {
  dd::LevenshteinMetric lev;
  const auto values = SampleValues();
  const double cap = static_cast<double>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(lev.BoundedDistance(a, b, cap));
    ++i;
  }
}
BENCHMARK(BM_LevenshteinBanded)->Arg(2)->Arg(10)->Arg(30);

// The three Levenshtein kernels head to head on random strings of the
// arg length (equal lengths — worst case for the band): reference DP,
// Myers bit-parallel (lengths <= 64 only), banded early-exit DP.
std::pair<std::string, std::string> RandomPair(std::size_t length) {
  dd::Rng rng(length * 2654435761u + 17);
  auto make = [&] {
    std::string s(length, 'a');
    for (auto& c : s) c = static_cast<char>('a' + rng.NextBounded(26));
    return s;
  };
  return {make(), make()};
}

void BM_LevKernelReferenceDp(benchmark::State& state) {
  const auto [a, b] = RandomPair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::lev::ReferenceDp(a, b));
  }
}
BENCHMARK(BM_LevKernelReferenceDp)->Arg(16)->Arg(64)->Arg(200);

void BM_LevKernelMyers64(benchmark::State& state) {
  const auto [a, b] = RandomPair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::lev::Myers64(a, b));
  }
}
BENCHMARK(BM_LevKernelMyers64)->Arg(16)->Arg(64);

void BM_LevKernelBanded(benchmark::State& state) {
  const auto [a, b] = RandomPair(static_cast<std::size_t>(state.range(0)));
  const std::size_t cap = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd::lev::Banded(a, b, cap));
  }
}
BENCHMARK(BM_LevKernelBanded)
    ->Args({200, 2})
    ->Args({200, 10})
    ->Args({200, 50});

void BM_QGram(benchmark::State& state) {
  dd::QGramMetric qgram(static_cast<std::size_t>(state.range(0)));
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(qgram.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_QGram)->Arg(2)->Arg(3);

void BM_Jaccard(benchmark::State& state) {
  dd::JaccardMetric jac;
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(jac.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_Jaccard);

void BM_Cosine(benchmark::State& state) {
  dd::CosineMetric cos;
  const auto values = SampleValues();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = values[i % values.size()];
    const auto& b = values[(i + 3) % values.size()];
    benchmark::DoNotOptimize(cos.Distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_Cosine);

}  // namespace

BENCHMARK_MAIN();
