// Regenerates paper Figure 5: "Generation for determinant attributes" —
// time of DA vs DAP (both with PAP) as the answer size l grows, on all
// four rules. Expected shape: DAP at or below DA for every l.

#include <cstdio>

#include "benchmarks/bench_util.h"

int main() {
  std::printf("=== Figure 5: generation for determinant attributes "
              "(DA vs DAP over l) ===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("fixed |M| = %zu\n", pairs);

  for (const auto& rule : dd::bench::kRules) {
    dd::bench::RuleWorkload w = dd::bench::MakeRuleWorkload(rule.number, pairs);
    std::printf("\n%s\n", rule.label);
    std::printf("%4s %12s %12s\n", "l", "DA(s)", "DAP(s)");
    for (std::size_t l = 1; l <= 7; ++l) {
      // Matched (mid-first) C_Y orders isolate the advanced bound's
      // contribution; the order trade-off itself is Table V.
      auto da_opts = dd::bench::ApproachOptions("DA+PAP", l);
      auto dap_opts = da_opts;
      dap_opts.lhs_algorithm = dd::LhsAlgorithm::kDap;
      auto da = dd::DetermineThresholds(w.matching, w.rule, da_opts);
      auto dap = dd::DetermineThresholds(w.matching, w.rule, dap_opts);
      if (!da.ok() || !dap.ok()) return 1;
      std::printf("%4zu %11.3fs %11.3fs\n", l, da->elapsed_seconds,
                  dap->elapsed_seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape (paper): DAP <= DA at every l.\n");
  return 0;
}
