// micro_incremental — append-batch latency through the incremental
// maintenance path (src/incr) versus rebuilding the matching relation
// from scratch, over N data tuples and batches of b inserts. A batch
// costs ~N·b distance evaluations against the rebuild's N²/2, so the
// expected speedup is ≈ N/(2b) — e.g. 625× for b=16 into N=20000.
//
// Every measurement is emitted as a machine-readable line
//   BENCH_JSON {"bench": "micro_incremental", "n": N, "batch": b,
//               "append_s": T, "rebuild_s": R, "speedup": R/T}
// — grep '^BENCH_JSON ' to collect them. DD_BENCH_SCALE multiplies the
// data sizes.

#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/schema.h"
#include "incr/incremental_builder.h"

namespace {

// Two numeric attributes keep the per-pair metric cost low, so the
// measurement isolates the incremental machinery rather than string
// edit distances.
std::vector<std::string> MakeRow(dd::Rng* rng) {
  return {dd::StrFormat("%.3f", rng->NextDouble() * 100.0),
          dd::StrFormat("%.3f", rng->NextDouble() * 100.0)};
}

}  // namespace

int main() {
  std::printf(
      "=== micro_incremental: append-batch latency vs full rebuild ===\n");
  const std::size_t sizes[] = {1000, 5000, 20000};
  const std::size_t batches[] = {1, 16, 256};
  const dd::Schema schema({{"x", dd::AttributeType::kNumeric},
                           {"y", dd::AttributeType::kNumeric}});

  for (std::size_t base_n : sizes) {
    const std::size_t n = dd::bench::Scaled(base_n);
    dd::IncrementalOptions options;
    options.matching.dmax = 10;
    auto builder =
        dd::IncrementalMatchingBuilder::Create(schema, {"x", "y"}, options);
    if (!builder.ok()) {
      std::fprintf(stderr, "builder: %s\n",
                   builder.status().ToString().c_str());
      return 1;
    }
    dd::Rng rng(n);
    std::vector<std::vector<std::string>> rows;
    rows.reserve(n);
    for (std::size_t r = 0; r < n; ++r) rows.push_back(MakeRow(&rng));

    dd::Stopwatch seed_timer;
    auto seeded = builder->ApplyBatch(rows, {});
    if (!seeded.ok()) {
      std::fprintf(stderr, "seed batch: %s\n",
                   seeded.status().ToString().c_str());
      return 1;
    }
    std::printf("\nN=%zu: seeded %zu matching tuples in %.3fs\n", n,
                seeded->num_added(), seed_timer.ElapsedSeconds());

    double rebuild_s = 0.0;
    {
      // Scoped so the 16-bytes-per-pair rebuild copy is freed before
      // the append measurements run.
      dd::Stopwatch rebuild_timer;
      dd::MatchingRelation rebuilt = builder->Rebuild();
      rebuild_s = rebuild_timer.ElapsedSeconds();
      std::printf("  full rebuild: %zu matching tuples in %.3fs\n",
                  rebuilt.num_tuples(), rebuild_s);
    }

    for (std::size_t b : batches) {
      std::vector<std::vector<std::string>> batch_rows;
      batch_rows.reserve(b);
      for (std::size_t k = 0; k < b; ++k) batch_rows.push_back(MakeRow(&rng));
      dd::Stopwatch append_timer;
      auto delta = builder->ApplyBatch(batch_rows, {});
      const double append_s = append_timer.ElapsedSeconds();
      if (!delta.ok()) {
        std::fprintf(stderr, "append batch: %s\n",
                     delta.status().ToString().c_str());
        return 1;
      }
      const double speedup = append_s > 0.0 ? rebuild_s / append_s : 0.0;
      std::printf(
          "  append b=%4zu: %10zu pairs in %9.5fs  (%9.1fx vs rebuild)\n", b,
          delta->pairs_computed(), append_s, speedup);
      std::printf(
          "BENCH_JSON {\"bench\": \"micro_incremental\", \"n\": %zu, "
          "\"batch\": %zu, \"append_s\": %.6f, \"rebuild_s\": %.6f, "
          "\"speedup\": %.1f}\n",
          n, b, append_s, rebuild_s, speedup);
      std::fflush(stdout);
    }
  }
  return 0;
}
