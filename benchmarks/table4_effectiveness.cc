// Regenerates paper Table IV: "Effectiveness of example results from
// Rule 3" — restaurant(name, address -> city, type). The interesting
// finding reproduced here is independence: the thresholds on name and
// type drift to dmax because no dependency exists on those attributes.

#include <cstdio>

#include "benchmarks/bench_util.h"
#include "core/determiner.h"
#include "data/corruptor.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "detect/violation_detector.h"

int main() {
  std::printf("=== Table IV: effectiveness of example results from Rule 3 "
              "===\n");
  const std::size_t pairs = dd::bench::BenchPairs();
  std::printf("workload: synthetic restaurant, |M| = %zu, dmax = 10, "
              "seed = 1\n\n",
              pairs);

  dd::RestaurantOptions gopts;
  gopts.num_entities = 180;
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  dd::RuleSpec rule{{"name", "address"}, {"city", "type"}};
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = pairs;
  auto matching =
      dd::BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  if (!matching.ok()) return 1;

  auto opts = dd::bench::ApproachOptions("DAP+PAP", /*top_l=*/6);
  auto determined = dd::DetermineThresholds(*matching, rule, opts);
  if (!determined.ok()) return 1;

  dd::CorruptorOptions copts;
  copts.corrupt_fraction = 0.08;
  auto corrupted = dd::InjectViolations(data, {"city"}, copts);
  if (!corrupted.ok()) return 1;
  std::printf("injected %zu ground-truth violating pairs (on city)\n\n",
              corrupted->truth_pairs.size());

  dd::MatchingOptions detect_opts = mopts;
  detect_opts.max_pairs = 0;
  auto dirty_matching = dd::BuildMatchingRelation(
      corrupted->dirty, rule.AllAttributes(), detect_opts);
  if (!dirty_matching.ok()) return 1;
  auto dirty_rule = dd::ResolveRule(*dirty_matching, rule);
  if (!dirty_rule.ok()) return 1;
  auto clean_rule = dd::ResolveRule(*matching, rule);
  if (!clean_rule.ok()) return 1;
  dd::ScanMeasureProvider provider(*matching, *clean_rule);
  dd::UtilityOptions uopts;
  uopts.prior_mean_cq = determined->prior_mean_cq;

  std::printf("%-5s %-12s %-12s %8s %8s %6s %8s | %9s %7s %9s\n", "phi",
              "phi[X]", "phi[Y]", "S", "C", "Q", "utility", "precision",
              "recall", "f-measure");

  auto evaluate = [&](const char* name, const dd::Pattern& pattern,
                      double utility) {
    dd::Measures m = dd::ComputeMeasures(&provider, pattern, mopts.dmax);
    if (utility < 0.0) {
      utility = dd::ExpectedUtility(m.total, m.lhs_count, m.confidence,
                                    m.quality, uopts);
    }
    dd::PairList found =
        dd::DetectViolationsIn(*dirty_matching, *dirty_rule, pattern);
    dd::DetectionQuality q =
        dd::EvaluateDetection(found, corrupted->truth_pairs);
    std::printf("%-5s %-12s %-12s %8.4f %8.4f %6.2f %8.4f | %9.4f %7.4f "
                "%9.4f\n",
                name, dd::LevelsToString(pattern.lhs).c_str(),
                dd::LevelsToString(pattern.rhs).c_str(), m.support,
                m.confidence, m.quality, utility, q.precision, q.recall,
                q.f_measure);
  };

  int i = 0;
  for (const auto& p : determined->patterns) {
    char name[16];
    std::snprintf(name, sizeof(name), "phi%d", ++i);
    evaluate(name, p.pattern, p.utility);
  }
  evaluate("fd", dd::Pattern::Fd(rule.lhs.size(), rule.rhs.size()), -1.0);

  std::printf(
      "\nexpected shape (paper): name (X side) and type (Y side) thresholds\n"
      "sit at dmax = 10 in the best patterns - no dependency exists there -\n"
      "while address ~> city carries the constraint. FD detects almost\n"
      "nothing (recall ~0) due to format variants.\n");
  return 0;
}
