// Data-quality checking with determined DDs (the paper's Rule 3 and the
// Table IV evaluation protocol): generate a clean Restaurant instance,
// inject random violations into a dirty copy, determine thresholds from
// the clean data, and measure detection precision/recall/F against the
// injected ground truth — for the determined DD, for randomly chosen
// patterns, and for the FD baseline.
//
// Usage: violation_detection [num_entities] [corrupt_fraction]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/determiner.h"
#include "data/corruptor.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "detect/violation_detector.h"
#include "matching/builder.h"

namespace {

void Report(const char* label, const dd::Pattern& pattern,
            const dd::Measures& m, double utility,
            const dd::DetectionQuality& q) {
  std::printf("%-14s %-22s S=%.4f C=%.4f Q=%.2f U=%.4f | P=%.4f R=%.4f F=%.4f\n",
              label, dd::PatternToString(pattern).c_str(), m.support,
              m.confidence, m.quality, utility, q.precision, q.recall,
              q.f_measure);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_entities =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;
  const double corrupt_fraction = argc > 2 ? std::atof(argv[2]) : 0.08;

  dd::RestaurantOptions gopts;
  gopts.num_entities = num_entities;
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  std::printf("Clean instance: %zu restaurant records (%zu entities)\n",
              data.relation.num_rows(), num_entities);

  dd::RuleSpec rule{{"name", "address"}, {"city", "type"}};
  dd::MatchingOptions mopts;
  mopts.dmax = 10;

  auto matching =
      dd::BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  if (!matching.ok()) {
    std::fprintf(stderr, "%s\n", matching.status().ToString().c_str());
    return 1;
  }

  dd::DetermineOptions dopts;
  dopts.top_l = 3;
  auto determined = dd::DetermineThresholds(*matching, rule, dopts);
  if (!determined.ok()) {
    std::fprintf(stderr, "%s\n", determined.status().ToString().c_str());
    return 1;
  }

  dd::CorruptorOptions copts;
  copts.corrupt_fraction = corrupt_fraction;
  auto corrupted = dd::InjectViolations(data, {"city"}, copts);
  if (!corrupted.ok()) {
    std::fprintf(stderr, "%s\n", corrupted.status().ToString().c_str());
    return 1;
  }
  std::printf("Dirty copy: %zu corrupted rows, %zu ground-truth violating "
              "pairs\n\n",
              corrupted->corrupted_rows.size(), corrupted->truth_pairs.size());

  auto resolved = dd::ResolveRule(*matching, rule);
  if (!resolved.ok()) return 1;
  dd::ScanMeasureProvider provider(*matching, *resolved);
  dd::UtilityOptions uopts;
  uopts.prior_mean_cq = determined->prior_mean_cq;

  auto evaluate = [&](const char* label, const dd::Pattern& pattern) {
    dd::Measures m = dd::ComputeMeasures(&provider, pattern, mopts.dmax);
    double utility = dd::ExpectedUtility(m.total, m.lhs_count, m.confidence,
                                         m.quality, uopts);
    auto found = dd::DetectViolations(corrupted->dirty, rule, pattern, mopts);
    if (!found.ok()) return;
    dd::DetectionQuality q =
        dd::EvaluateDetection(*found, corrupted->truth_pairs);
    Report(label, pattern, m, utility, q);
  };

  std::printf("%-14s %-22s %s\n", "source", "pattern",
              "measures | detection accuracy");
  for (std::size_t i = 0; i < determined->patterns.size(); ++i) {
    char label[40];
    std::snprintf(label, sizeof(label), "determined #%zu", i + 1);
    evaluate(label, determined->patterns[i].pattern);
  }

  // Random patterns for contrast (the paper: determined patterns beat
  // randomly selected settings).
  dd::Rng rng(12345);
  for (int i = 0; i < 3; ++i) {
    dd::Pattern random_pattern;
    for (std::size_t a = 0; a < rule.lhs.size(); ++a) {
      random_pattern.lhs.push_back(static_cast<int>(rng.NextBounded(11)));
    }
    for (std::size_t a = 0; a < rule.rhs.size(); ++a) {
      random_pattern.rhs.push_back(static_cast<int>(rng.NextBounded(11)));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "random #%d", i + 1);
    evaluate(label, random_pattern);
  }

  evaluate("fd", dd::Pattern::Fd(rule.lhs.size(), rule.rhs.size()));
  std::printf(
      "\nThe determined patterns should show the best F-measure; the FD\n"
      "suffers low recall because format variants break exact equality.\n");
  return 0;
}
