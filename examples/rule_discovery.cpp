// Rule discovery plus DD reasoning: explore all candidate rules of a
// relation, determine each rule's best threshold pattern parameter-
// free, reduce the winners to a minimal cover under DD implication, and
// verify the surviving statements against the clean instance.
//
// Usage: rule_discovery [num_entities]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"
#include "data/generators.h"
#include "discover/rule_explorer.h"
#include "reason/implication.h"
#include "reason/statement.h"

int main(int argc, char** argv) {
  const std::size_t num_entities =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;

  dd::RestaurantOptions gopts;
  gopts.num_entities = num_entities;
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  std::printf("restaurant instance: %zu rows, attributes {%s}\n",
              data.relation.num_rows(),
              data.relation.schema().ToString().c_str());

  // 1. Explore every rule with up to two determinant attributes.
  dd::ExploreOptions options;
  options.matching.dmax = 10;
  options.matching.max_pairs = 15000;
  options.max_lhs_size = 2;
  options.top_rules = 8;
  auto rules = dd::DiscoverRules(data.relation, options);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop discovered rules (by expected utility):\n");
  std::vector<dd::DdStatement> statements;
  for (const auto& r : *rules) {
    dd::DdStatement statement{r.rule, r.best.pattern};
    std::printf("  %-48s C=%.3f Q=%.2f U=%.4f\n",
                statement.ToString().c_str(), r.best.measures.confidence,
                r.best.measures.quality, r.best.utility);
    statements.push_back(std::move(statement));
  }

  // 2. Minimal cover: drop statements implied by stronger ones.
  auto cover = dd::MinimalCover(statements, options.matching.dmax);
  std::printf("\nminimal cover keeps %zu of %zu statements:\n", cover.size(),
              statements.size());
  for (const auto& s : cover) {
    std::printf("  %s\n", s.ToString().c_str());
  }

  // 3. Verify each surviving DD on the clean instance.
  std::printf("\nviolations on the clean instance (should be few — the\n"
              "determined thresholds tolerate format variants):\n");
  dd::MatchingOptions verify_opts;
  verify_opts.dmax = options.matching.dmax;
  for (const auto& s : cover) {
    auto violations = dd::CountViolations(data.relation, s, verify_opts);
    if (!violations.ok()) {
      std::fprintf(stderr, "%s\n", violations.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-48s %zu violating pair(s)\n", s.ToString().c_str(),
                *violations);
  }
  return 0;
}
