// Record matching with matching dependencies (MDs) — the related-work
// application the paper suggests its techniques extend to (Fan et al.
// 2009; Song & Chen, CIKM 2009). An MD identifies duplicates: if two
// records are within the determined thresholds on X (here name and
// address), they refer to the same real-world entity (equality on an
// identifier attribute). DetermineMdThresholds pins ϕ[Y] to equality
// and finds the X thresholds with the maximum expected utility; we then
// score the implied duplicate detection against the generator's entity
// ids.
//
// Usage: record_matching [num_entities]

#include <cstdio>
#include <cstdlib>

#include "core/special_cases.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "matching/builder.h"

int main(int argc, char** argv) {
  const std::size_t num_entities =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;

  dd::RestaurantOptions gopts;
  gopts.num_entities = num_entities;
  dd::GeneratedData data = dd::GenerateRestaurant(gopts);
  std::printf("restaurant instance: %zu rows, %zu entities\n",
              data.relation.num_rows(), num_entities);

  // city acts as the identification attribute here: a pure MD setting
  // would use a key, so we emulate one by adding the entity's canonical
  // city — records of the same entity agree on it up to format noise.
  dd::RuleSpec rule{{"name", "address"}, {"city"}};
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  auto matching =
      dd::BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  if (!matching.ok()) {
    std::fprintf(stderr, "%s\n", matching.status().ToString().c_str());
    return 1;
  }

  dd::SpecialCaseOptions options;
  options.top_l = 5;
  auto md = dd::DetermineMdThresholds(*matching, rule, options);
  if (!md.ok()) {
    std::fprintf(stderr, "%s\n", md.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMD candidates (Y pinned to equality):\n");
  std::printf("%-24s %8s %8s %9s\n", "pattern", "D", "C", "utility");
  for (const auto& p : md->patterns) {
    std::printf("%-24s %8.4f %8.4f %9.4f\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.utility);
  }
  if (md->patterns.empty()) return 1;

  // Duplicate identification: pairs within the MD's X thresholds are
  // declared matches; ground truth is "same generator entity".
  const dd::Pattern& best = md->patterns.front().pattern;
  dd::PairList declared;
  dd::PairList truth;
  for (std::size_t row = 0; row < matching->num_tuples(); ++row) {
    auto [i, j] = matching->pair(row);
    bool within = true;
    for (std::size_t a = 0; a < rule.lhs.size(); ++a) {
      if (static_cast<int>(matching->level(row, a)) > best.lhs[a]) {
        within = false;
        break;
      }
    }
    if (within) declared.emplace_back(i, j);
    if (data.entity_ids[i] == data.entity_ids[j]) truth.emplace_back(i, j);
  }
  dd::DetectionQuality q = dd::EvaluateDetection(declared, truth);
  std::printf("\nduplicate identification with %s on (name, address):\n",
              dd::LevelsToString(best.lhs).c_str());
  std::printf("  declared=%zu  true-duplicate pairs=%zu\n", q.found_size,
              q.truth_size);
  std::printf("  precision=%.4f recall=%.4f f-measure=%.4f\n", q.precision,
              q.recall, q.f_measure);
  std::printf(
      "\nThe determined thresholds tolerate the format variants that break\n"
      "exact matching while keeping distinct restaurants apart.\n");
  return 0;
}
