// Discovering distance thresholds on bibliographic data (the paper's
// Rules 1 and 2). Generates a Cora-like truth instance, builds the
// matching relation, and determines the top-5 threshold patterns for
//   Rule 1: cora(author, title -> venue, year)
//   Rule 2: cora(venue -> address, publisher, editor)
// comparing DA+PA against DAP+PAP timings along the way.
//
// Usage: cora_discovery [num_entities] [max_pairs]

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/determiner.h"
#include "data/generators.h"
#include "matching/builder.h"

namespace {

void RunRule(const dd::MatchingRelation& matching, const dd::RuleSpec& rule,
             const char* name) {
  std::printf("\n=== %s ===\n", name);

  // Fast, recommended configuration: DAP+PAP, top-first order.
  dd::DetermineOptions fast;
  fast.top_l = 5;
  auto result = dd::DetermineThresholds(matching, rule, fast);
  if (!result.ok()) {
    std::fprintf(stderr, "determination failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("DAP+PAP: %.3fs, pruning rate %.3f, prior CQ mean %.3f\n",
              result->elapsed_seconds, result->stats.PruningRate(),
              result->prior_mean_cq);

  // Baseline for comparison: exhaustive DA+PA.
  dd::DetermineOptions slow = fast;
  slow.lhs_algorithm = dd::LhsAlgorithm::kDa;
  slow.rhs_algorithm = dd::RhsAlgorithm::kPa;
  auto baseline = dd::DetermineThresholds(matching, rule, slow);
  if (baseline.ok()) {
    std::printf("DA+PA:   %.3fs (same answers, no pruning)\n",
                baseline->elapsed_seconds);
  }

  std::printf("%-28s %8s %8s %8s %6s %9s\n", "pattern", "D", "C", "S", "Q",
              "utility");
  for (const auto& p : result->patterns) {
    std::printf("%-28s %8.4f %8.4f %8.4f %6.2f %9.4f\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.measures.support, p.measures.quality,
                p.utility);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_entities =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;
  const std::size_t max_pairs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30000;

  dd::CoraOptions gopts;
  gopts.num_entities = num_entities;
  dd::Stopwatch timer;
  dd::GeneratedData cora = dd::GenerateCora(gopts);
  std::printf("Generated %zu cora records (%zu papers) in %.3fs\n",
              cora.relation.num_rows(), num_entities, timer.ElapsedSeconds());

  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = max_pairs;
  // q-gram edit distance (the paper's preprocessing) for the short year
  // field; plain edit distance cannot separate distinct years.
  mopts.metric_overrides["year"] = "qgram2";

  // Rule 1: author, title -> venue, year.
  timer.Restart();
  auto m1 = dd::BuildMatchingRelation(
      cora.relation, {"author", "title", "venue", "year"}, mopts);
  if (!m1.ok()) {
    std::fprintf(stderr, "%s\n", m1.status().ToString().c_str());
    return 1;
  }
  std::printf("Rule 1 matching relation: %zu tuples in %.3fs\n",
              m1->num_tuples(), timer.ElapsedSeconds());
  RunRule(*m1, {{"author", "title"}, {"venue", "year"}},
          "Rule 1: cora(author, title -> venue, year)");

  // Rule 2: venue -> address, publisher, editor.
  timer.Restart();
  auto m2 = dd::BuildMatchingRelation(
      cora.relation, {"venue", "address", "publisher", "editor"}, mopts);
  if (!m2.ok()) {
    std::fprintf(stderr, "%s\n", m2.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRule 2 matching relation: %zu tuples in %.3fs\n",
              m2->num_tuples(), timer.ElapsedSeconds());
  RunRule(*m2, {{"venue"}, {"address", "publisher", "editor"}},
          "Rule 2: cora(venue -> address, publisher, editor)");
  return 0;
}
