// Quickstart: the paper's running Hotel example (Table I) end to end.
//
//   1. Load the six-tuple Hotel instance.
//   2. Build the matching relation over (Address, Region).
//   3. Compute the statistical measures of the paper's dd1 =
//      ([Address] -> [Region], <8, 4>) — the plain-Levenshtein
//      equivalent of the paper's q-gram-based <8, 3> — and of the FD.
//   4. Determine the best distance threshold pattern parameter-free.
//   5. Detect violations with both and compare.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/determiner.h"
#include "core/measures.h"
#include "data/generators.h"
#include "detect/violation_detector.h"
#include "matching/builder.h"

namespace {

void PrintMeasures(const char* label, const dd::Measures& m, double utility) {
  std::printf("  %-18s D=%.4f  C=%.4f  S=%.4f  Q=%.2f  utility=%.4f\n",
              label, m.d, m.confidence, m.support, m.quality, utility);
}

}  // namespace

int main() {
  // 1. The Hotel instance of Table I.
  dd::GeneratedData hotel = dd::HotelExample();
  std::printf("Hotel instance (%zu tuples):\n", hotel.relation.num_rows());
  for (std::size_t r = 0; r < hotel.relation.num_rows(); ++r) {
    std::printf("  t%zu: %-16s | %-26s | %s\n", r + 1,
                hotel.relation.at(r, 0).c_str(),
                hotel.relation.at(r, 1).c_str(),
                hotel.relation.at(r, 2).c_str());
  }

  // 2. Pairwise matching relation (edit distance, levels 0..dmax).
  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  auto matching = dd::BuildMatchingRelation(hotel.relation,
                                            {"Address", "Region"}, mopts);
  if (!matching.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 matching.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMatching relation: %zu matching tuples, dmax=%d\n",
              matching->num_tuples(), matching->dmax());

  // 3. Measures of the paper's dd1 and of the FD.
  dd::RuleSpec rule{{"Address"}, {"Region"}};
  auto resolved = dd::ResolveRule(*matching, rule);
  if (!resolved.ok()) return 1;
  dd::ScanMeasureProvider provider(*matching, *resolved);
  dd::UtilityOptions uopts;
  uopts.prior_mean_cq =
      dd::EstimatePriorMeanCq(&provider, 1, 1, mopts.dmax, 100, 99);

  std::printf("\nMeasures on [Address] -> [Region] (prior CQ mean %.3f):\n",
              uopts.prior_mean_cq);
  dd::Pattern dd1{{8}, {4}};
  dd::Measures m1 = dd::ComputeMeasures(&provider, dd1, mopts.dmax);
  PrintMeasures("dd1 = <8, 4>:", m1,
                dd::ExpectedUtility(m1.total, m1.lhs_count, m1.confidence,
                                    m1.quality, uopts));
  dd::Pattern fd = dd::Pattern::Fd(1, 1);
  dd::Measures mf = dd::ComputeMeasures(&provider, fd, mopts.dmax);
  PrintMeasures("fd  = <0, 0>:", mf,
                dd::ExpectedUtility(mf.total, mf.lhs_count, mf.confidence,
                                    mf.quality, uopts));

  // 4. Parameter-free determination (DAP+PAP, top-3 answers).
  dd::DetermineOptions dopts;
  dopts.top_l = 3;
  auto determined = dd::DetermineThresholds(*matching, rule, dopts);
  if (!determined.ok()) {
    std::fprintf(stderr, "determination failed: %s\n",
                 determined.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop determined patterns:\n");
  for (const auto& p : determined->patterns) {
    std::printf("  %-18s D=%.4f  C=%.4f  S=%.4f  Q=%.2f  utility=%.4f\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.measures.support, p.measures.quality,
                p.utility);
  }
  std::printf("  (pruning rate %.2f, %zu/%zu RHS candidates evaluated)\n",
              determined->stats.PruningRate(), determined->stats.rhs.evaluated,
              determined->stats.rhs.lattice_size);

  // 5. Violation detection: dd1 vs FD.
  auto show_detection = [&](const char* label, const dd::Pattern& p) {
    auto found = dd::DetectViolations(hotel.relation, rule, p, mopts);
    if (!found.ok()) return;
    std::printf("  %s flags %zu pair(s):", label, found->size());
    for (const auto& [i, j] : *found) {
      std::printf(" (t%u,t%u)", i + 1, j + 1);
    }
    std::printf("\n");
  };
  std::printf("\nViolation detection on the Hotel instance:\n");
  show_detection("dd1 <8,4>", dd1);
  show_detection("fd  <0,0>", fd);
  if (!determined->patterns.empty()) {
    show_detection("determined", determined->patterns.front().pattern);
  }
  std::printf(
      "\nNote how dd1 catches the true violation (t4,t6) that the FD\n"
      "misses, and does not flag the format variants (t1,t2).\n");
  return 0;
}
