// Plugging a custom distance metric into the pipeline. Registers a
// domain-specific "year gap" metric plus a token-based metric for long
// text, then determines thresholds for a CiteSeer-style rule using
// per-attribute metric overrides (the paper treats the metric as a
// pluggable component, citing the Bilenko et al. survey).
//
// Usage: custom_metric [num_entities]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/string_util.h"
#include "core/determiner.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "metric/metric.h"

namespace {

// Absolute difference in years, tolerant of formats like "1995",
// "(1995)" and "'95" — a realistic attribute-specific metric.
class YearGapMetric : public dd::DistanceMetric {
 public:
  std::string_view name() const override { return "year_gap"; }

  double Distance(std::string_view a, std::string_view b) const override {
    const int ya = ParseYear(a);
    const int yb = ParseYear(b);
    if (ya < 0 || yb < 0) return a == b ? 0.0 : 50.0;
    return std::abs(ya - yb);
  }

 private:
  static int ParseYear(std::string_view s) {
    std::string digits;
    for (char c : s) {
      if (c >= '0' && c <= '9') digits += c;
    }
    if (digits.size() == 4) return std::atoi(digits.c_str());
    if (digits.size() == 2) {
      const int two = std::atoi(digits.c_str());
      return two >= 30 ? 1900 + two : 2000 + two;
    }
    return -1;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_entities =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;

  // One-time registration makes the metric available by name everywhere.
  dd::Status reg = dd::MetricRegistry::Default().Register(
      "year_gap", [] { return std::make_unique<YearGapMetric>(); });
  if (!reg.ok()) {
    std::fprintf(stderr, "registration failed: %s\n", reg.ToString().c_str());
    return 1;
  }
  std::printf("Registered metrics:");
  for (const auto& name : dd::MetricRegistry::Default().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // Demonstrate the metric directly.
  YearGapMetric year_gap;
  std::printf("year_gap(\"1995\", \"'96\") = %.0f\n",
              year_gap.Distance("1995", "'96"));
  std::printf("year_gap(\"(2001)\", \"2001\") = %.0f\n\n",
              year_gap.Distance("(2001)", "2001"));

  // Cora rule with per-attribute metric overrides: cosine tokens for the
  // long title field, year_gap for year, default edit distance elsewhere.
  dd::CoraOptions gopts;
  gopts.num_entities = num_entities;
  dd::GeneratedData cora = dd::GenerateCora(gopts);

  dd::MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 20000;
  mopts.metric_overrides["title"] = "cosine";    // normalized, auto-scaled
  mopts.metric_overrides["year"] = "year_gap";   // unnormalized, scale 1
  auto matching = dd::BuildMatchingRelation(
      cora.relation, {"author", "title", "venue", "year"}, mopts);
  if (!matching.ok()) {
    std::fprintf(stderr, "%s\n", matching.status().ToString().c_str());
    return 1;
  }
  std::printf("Matching relation with custom metrics: %zu tuples\n",
              matching->num_tuples());

  dd::RuleSpec rule{{"author", "title"}, {"venue", "year"}};
  dd::DetermineOptions dopts;
  dopts.top_l = 5;
  auto result = dd::DetermineThresholds(*matching, rule, dopts);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop patterns under custom metrics (%.3fs):\n",
              result->elapsed_seconds);
  std::printf("%-28s %8s %8s %6s %9s\n", "pattern", "D", "C", "Q", "utility");
  for (const auto& p : result->patterns) {
    std::printf("%-28s %8.4f %8.4f %6.2f %9.4f\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.measures.quality, p.utility);
  }
  std::printf(
      "\nThe title threshold is now in cosine-distance levels (0..10 maps\n"
      "to [0,1]), and the year threshold counts years of difference.\n");
  return 0;
}
