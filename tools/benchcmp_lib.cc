#include "tools/benchcmp_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <tuple>

#include "common/string_util.h"

namespace dd::bench {

namespace {

// ---------------------------------------------------------------------------
// Mini JSON reader — just enough for BENCH_JSON rows and the baseline
// documents (objects, arrays, strings with \-escapes, numbers, bools,
// null). Hand-rolled like every other serializer in this repo; no
// external dependency.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  Result<JsonValue> Parse() {
    DD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return value;
    while (true) {
      SkipSpace();
      DD_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':' in object");
      DD_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object[key.str] = std::move(member);
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return value;
    while (true) {
      DD_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.str += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.str += '"'; break;
        case '\\': value.str += '\\'; break;
        case '/': value.str += '/'; break;
        case 'n': value.str += '\n'; break;
        case 't': value.str += '\t'; break;
        case 'r': value.str += '\r'; break;
        case 'b': value.str += '\b'; break;
        case 'f': value.str += '\f'; break;
        case 'u': {
          // Flatten \uXXXX to '?' — bench rows are ASCII; the gate
          // never compares string payloads byte-for-byte.
          if (text_.size() - pos_ < 4) return Error("truncated \\u escape");
          pos_ += 4;
          value.str += '?';
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Error("expected true/false");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Error("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return value;
  }

  const std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

double NumberOr(const JsonValue& obj, const std::string& key,
                double fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::string StringOr(const JsonValue& obj, const std::string& key,
                     const std::string& fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->str
                                                             : fallback;
}

using RowKey = std::tuple<std::string, std::string, std::int64_t>;

// Folds one row object into the accumulating file: min-of-k on the
// metric, first-seen host_cores / run_id.
void AccumulateRow(const JsonValue& row, const std::string& metric_key,
                   const std::string& default_bench,
                   std::map<RowKey, BenchRow>* rows, BenchFile* file) {
  if (file->host_cores == 0) {
    file->host_cores = static_cast<std::int64_t>(NumberOr(row, "host_cores", 0));
  }
  if (file->run_id.empty()) file->run_id = StringOr(row, "run_id", "");
  const JsonValue* metric = row.Find(metric_key);
  if (metric == nullptr || metric->kind != JsonValue::Kind::kNumber) {
    ++file->skipped_rows;
    return;
  }
  BenchRow parsed;
  parsed.bench = StringOr(row, "bench", default_bench);
  parsed.phase = StringOr(row, "phase", "");
  parsed.threads = static_cast<std::int64_t>(NumberOr(row, "threads", 0));
  parsed.value = metric->number;
  const RowKey key{parsed.bench, parsed.phase, parsed.threads};
  auto [it, inserted] = rows->emplace(key, parsed);
  if (!inserted) {
    it->second.value = std::min(it->second.value, parsed.value);
    ++it->second.samples;
  }
}

Status AccumulateContent(const std::string& content,
                         const std::string& metric_key,
                         std::map<RowKey, BenchRow>* rows, BenchFile* file) {
  // Shape 1: one JSON object (a baseline document with a "rows" array).
  std::size_t first = content.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && content[first] == '{') {
    JsonReader reader(content.substr(first));
    DD_ASSIGN_OR_RETURN(JsonValue doc, reader.Parse());
    const std::string default_bench = StringOr(doc, "bench", "");
    if (file->host_cores == 0) {
      file->host_cores =
          static_cast<std::int64_t>(NumberOr(doc, "host_cores", 0));
    }
    if (file->run_id.empty()) file->run_id = StringOr(doc, "run_id", "");
    const JsonValue* doc_rows = doc.Find("rows");
    if (doc_rows == nullptr || doc_rows->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument(
          "baseline document has no \"rows\" array");
    }
    for (const JsonValue& row : doc_rows->array) {
      if (row.kind != JsonValue::Kind::kObject) continue;
      AccumulateRow(row, metric_key, default_bench, rows, file);
    }
    return Status::Ok();
  }
  // Shape 2: raw harness stdout with BENCH_JSON lines.
  static constexpr char kMarker[] = "BENCH_JSON ";
  std::size_t line_start = 0;
  std::size_t lines_found = 0;
  while (line_start < content.size()) {
    std::size_t line_end = content.find('\n', line_start);
    if (line_end == std::string::npos) line_end = content.size();
    const std::string line =
        content.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    const std::size_t marker = line.find(kMarker);
    if (marker == std::string::npos) continue;
    ++lines_found;
    JsonReader reader(line.substr(marker + sizeof(kMarker) - 1));
    DD_ASSIGN_OR_RETURN(JsonValue row, reader.Parse());
    if (row.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("BENCH_JSON line is not an object");
    }
    AccumulateRow(row, metric_key, "", rows, file);
  }
  if (lines_found == 0) {
    return Status::InvalidArgument(
        "input is neither a baseline JSON document nor harness output "
        "with BENCH_JSON lines");
  }
  return Status::Ok();
}

BenchFile Finish(std::map<RowKey, BenchRow> rows, BenchFile file) {
  file.rows.reserve(rows.size());
  for (auto& [key, row] : rows) file.rows.push_back(std::move(row));
  // std::map iterates in key order, so rows are already sorted by
  // (bench, phase, threads).
  return file;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on " + path);
  return content;
}

}  // namespace

Result<BenchFile> ParseBenchContent(const std::string& content,
                                    const std::string& metric_key) {
  std::map<RowKey, BenchRow> rows;
  BenchFile file;
  DD_RETURN_IF_ERROR(AccumulateContent(content, metric_key, &rows, &file));
  return Finish(std::move(rows), std::move(file));
}

Result<BenchFile> LoadBenchFile(const std::string& path,
                                const std::string& metric_key) {
  namespace fs = std::filesystem;
  std::map<RowKey, BenchRow> rows;
  BenchFile file;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> entries;
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        entries.push_back(entry.path().string());
      }
    }
    if (entries.empty()) {
      return Status::InvalidArgument("no .json baselines under " + path);
    }
    std::sort(entries.begin(), entries.end());
    for (const std::string& entry : entries) {
      DD_ASSIGN_OR_RETURN(std::string content, ReadFileToString(entry));
      DD_RETURN_IF_ERROR(
          AccumulateContent(content, metric_key, &rows, &file));
    }
    return Finish(std::move(rows), std::move(file));
  }
  DD_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  DD_RETURN_IF_ERROR(AccumulateContent(content, metric_key, &rows, &file));
  return Finish(std::move(rows), std::move(file));
}

CompareReport CompareBench(const BenchFile& base, const BenchFile& fresh,
                           const CompareOptions& options) {
  CompareReport report;
  report.base_host_cores = base.host_cores;
  report.fresh_host_cores = fresh.host_cores;
  if (base.host_cores != 0 && fresh.host_cores != 0 &&
      base.host_cores != fresh.host_cores && !options.allow_host_mismatch) {
    report.host_mismatch = true;
    return report;
  }
  std::map<RowKey, const BenchRow*> fresh_by_key;
  for (const BenchRow& row : fresh.rows) {
    fresh_by_key[{row.bench, row.phase, row.threads}] = &row;
  }
  std::map<RowKey, bool> matched;
  for (const BenchRow& row : base.rows) {
    const RowKey key{row.bench, row.phase, row.threads};
    auto it = fresh_by_key.find(key);
    if (it == fresh_by_key.end()) {
      report.only_base.push_back(row);
      continue;
    }
    matched[key] = true;
    RowComparison cmp;
    cmp.base = row;
    cmp.fresh = *it->second;
    cmp.ratio = row.value > 0.0 ? cmp.fresh.value / row.value : 0.0;
    cmp.regressed =
        cmp.fresh.value > row.value * (1.0 + options.rel_tolerance) &&
        cmp.fresh.value - row.value > options.abs_floor_s;
    if (cmp.regressed) ++report.regressions;
    report.worst_ratio = std::max(report.worst_ratio, cmp.ratio);
    report.rows.push_back(std::move(cmp));
  }
  for (const BenchRow& row : fresh.rows) {
    if (!matched.count({row.bench, row.phase, row.threads})) {
      report.only_fresh.push_back(row);
    }
  }
  return report;
}

std::string CompareReportToText(const CompareReport& report,
                                const CompareOptions& options) {
  std::string out;
  if (report.host_mismatch) {
    out += StrFormat(
        "REFUSED: baseline captured on a %lld-core host, fresh run on "
        "%lld cores — wall times are incomparable (pass "
        "--allow_host_mismatch to compare anyway)\n",
        static_cast<long long>(report.base_host_cores),
        static_cast<long long>(report.fresh_host_cores));
    return out;
  }
  out += StrFormat("%-20s %-22s %7s %10s %10s %7s  %s\n", "bench", "phase",
                   "threads", "base_s", "fresh_s", "ratio", "verdict");
  for (const RowComparison& cmp : report.rows) {
    out += StrFormat("%-20s %-22s %7lld %10.6f %10.6f %6.2fx  %s\n",
                     cmp.base.bench.c_str(), cmp.base.phase.c_str(),
                     static_cast<long long>(cmp.base.threads),
                     cmp.base.value, cmp.fresh.value, cmp.ratio,
                     cmp.regressed ? "REGRESSED" : "ok");
  }
  for (const BenchRow& row : report.only_base) {
    out += StrFormat("%-20s %-22s %7lld %10.6f %10s %7s  missing from "
                     "fresh run\n",
                     row.bench.c_str(), row.phase.c_str(),
                     static_cast<long long>(row.threads), row.value, "-", "-");
  }
  for (const BenchRow& row : report.only_fresh) {
    out += StrFormat("%-20s %-22s %7lld %10s %10.6f %7s  no baseline\n",
                     row.bench.c_str(), row.phase.c_str(),
                     static_cast<long long>(row.threads), "-", row.value, "-");
  }
  out += StrFormat(
      "%zu row(s) compared, %zu regression(s) (tolerance: ratio > %.2f "
      "and delta > %.3fs), worst ratio %.2fx\n",
      report.rows.size(), report.regressions, 1.0 + options.rel_tolerance,
      options.abs_floor_s, report.worst_ratio);
  return out;
}

std::string TrajectoryRow(const CompareReport& report, const BenchFile& fresh,
                          std::int64_t captured_unix) {
  std::string out = StrFormat(
      "{\"captured_unix\":%lld,\"run_id\":\"%s\",\"host_cores\":%lld,"
      "\"compared\":%zu,\"regressions\":%zu,\"worst_ratio\":%.3f,"
      "\"rows\":[",
      static_cast<long long>(captured_unix), fresh.run_id.c_str(),
      static_cast<long long>(fresh.host_cores), report.rows.size(),
      report.regressions, report.worst_ratio);
  for (std::size_t i = 0; i < fresh.rows.size(); ++i) {
    const BenchRow& row = fresh.rows[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"bench\":\"%s\",\"phase\":\"%s\",\"threads\":%lld,"
        "\"elapsed_s\":%.6f}",
        row.bench.c_str(), row.phase.c_str(),
        static_cast<long long>(row.threads), row.value);
  }
  out += "]}";
  return out;
}

}  // namespace dd::bench
