// benchcmp — the perf-regression gate over BENCH_JSON captures.
//
//   benchcmp <baseline.json|baseline-dir> <fresh.json|fresh-stdout.txt>
//            [--metric_key elapsed_s]   row key holding the seconds
//            [--rel 0.5]                relative tolerance (fail past
//                                       base * (1 + rel))
//            [--abs_floor_s 0.002]      AND the delta must exceed this
//            [--check_only]             report, but exit 0 even on
//                                       regressions (CI smoke mode on
//                                       noisy shared runners)
//            [--allow_host_mismatch]    compare across differing
//                                       host_cores stamps
//            [--trajectory t.jsonl]     append one summary row (the
//                                       fresh timings + verdict) to the
//                                       BENCH_trajectory log
//
// Inputs are baseline documents (benchmarks/baselines/*.json) or raw
// harness stdout containing BENCH_JSON lines; a baseline directory
// merges every *.json inside. Exit codes: 0 pass, 1 regression or
// host mismatch, 2 usage / I/O error.

#include <cstdio>
#include <ctime>
#include <string>

#include "common/flags.h"
#include "tools/benchcmp_lib.h"

namespace {

int UsageError(const char* message) {
  std::fprintf(stderr, "benchcmp: %s\n", message);
  std::fprintf(stderr,
               "usage: benchcmp <baseline.json|dir> <fresh.json> "
               "[--metric_key k] [--rel R] [--abs_floor_s S] "
               "[--check_only] [--allow_host_mismatch] "
               "[--trajectory t.jsonl]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dd::ArgParser args(argc, argv, 1);
  if (args.positional().size() != 2) {
    return UsageError("expected exactly two inputs: baseline and fresh run");
  }
  const std::string metric_key = args.GetString("metric_key", "elapsed_s");
  dd::bench::CompareOptions options;
  auto rel = args.GetDouble("rel", options.rel_tolerance);
  auto abs_floor = args.GetDouble("abs_floor_s", options.abs_floor_s);
  if (!rel.ok() || !abs_floor.ok()) {
    return UsageError("--rel and --abs_floor_s must be numbers");
  }
  options.rel_tolerance = *rel;
  options.abs_floor_s = *abs_floor;
  options.allow_host_mismatch = args.Has("allow_host_mismatch");

  auto base = dd::bench::LoadBenchFile(args.positional()[0], metric_key);
  if (!base.ok()) {
    std::fprintf(stderr, "benchcmp: baseline: %s\n",
                 base.status().ToString().c_str());
    return 2;
  }
  auto fresh = dd::bench::LoadBenchFile(args.positional()[1], metric_key);
  if (!fresh.ok()) {
    std::fprintf(stderr, "benchcmp: fresh run: %s\n",
                 fresh.status().ToString().c_str());
    return 2;
  }
  if (base->skipped_rows + fresh->skipped_rows > 0) {
    std::fprintf(stderr,
                 "benchcmp: note: %zu row(s) lacked \"%s\" and were "
                 "ignored\n",
                 base->skipped_rows + fresh->skipped_rows,
                 metric_key.c_str());
  }

  const dd::bench::CompareReport report =
      dd::bench::CompareBench(*base, *fresh, options);
  std::fputs(dd::bench::CompareReportToText(report, options).c_str(), stdout);

  const std::string trajectory = args.GetString("trajectory");
  if (!trajectory.empty()) {
    std::FILE* f = std::fopen(trajectory.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "benchcmp: cannot append to %s\n",
                   trajectory.c_str());
      return 2;
    }
    const std::string row = dd::bench::TrajectoryRow(
        report, *fresh, static_cast<std::int64_t>(std::time(nullptr)));
    std::fprintf(f, "%s\n", row.c_str());
    std::fclose(f);
  }

  if (!report.ok()) {
    if (args.Has("check_only")) {
      std::fprintf(stderr,
                   "benchcmp: regressions found, exiting 0 (--check_only)\n");
      return 0;
    }
    return 1;
  }
  return 0;
}
