// ddtool — command-line front end for the ddthreshold library.
//
//   ddtool generate  --dataset cora --entities 200 --out clean.csv
//                    [--seed 42] [--dirty-out dirty.csv --truth-out t.csv
//                     --corrupt-fraction 0.08 --corrupt-attrs city]
//   ddtool determine --input clean.csv --lhs author,title --rhs venue,year
//                    [--dmax 10] [--max-pairs 100000] [--top 5]
//                    [--algo DAP+PAP|DA+PAP|DA+PA] [--order top|mid]
//                    [--metric attr=levenshtein ...] [--provider scan|grid]
//                    [--approx] [--sample_target 100000] [--epsilon 0.01]
//                    [--seed 7] [--no_blocking]
//                    (sampled + LSH-blocked determination, src/approx:
//                     counts become estimates with Wilson error bounds,
//                     refined until the top-l ranking is stable;
//                     incompatible with --max-pairs/--save-matching/
//                     --load-matching)
//                    [--collapse] [--json]
//                    [--trace_json report.json] [--print_stats]
//                    (trace_json writes the span-tree + metrics run
//                     report; print_stats summarizes search cost —
//                     pruning rate, candidates evaluated, rows scanned)
//                    [--save-matching m.ddmr | --load-matching m.ddmr]
//                    (persist / reuse the pairwise matching relation,
//                     the expensive step, across invocations)
//   ddtool explain   same matching/rule/search flags as determine, but
//                    runs with the EXPLAIN decision recorder enabled
//                    and renders the audit: pruning waterfall,
//                    winner-vs-runner-up diff, per-candidate events
//                    [--explain_sample K] keep every K-th event
//                     (winner / bound-advancing / skyline events are
//                     always kept; waterfall totals stay exact)
//                    [--ring_capacity N] per-thread event ring size
//                    [--audit_json audit.json] write the JSON audit doc
//                    [--landscape surface.csv|.jsonl] utility landscape
//                     (ϕ coordinates -> D,C,Q,CQ,Ū) for plotting
//                    [--json] print the audit document on stdout
//   ddtool detect    --input dirty.csv --lhs a,b --rhs c --pattern "4,2->3"
//                    [--dmax 10] [--metric ...] [--out pairs.csv]
//                    [--trace_json report.json]
//
// DD_LOG_LEVEL=info|warn|error|off raises/lowers library logging on
// stderr (default warn). --threads N (any subcommand; DD_THREADS=N
// equivalently) sets the worker-pool concurrency for the matching
// build and the determination search — results are bit-identical at
// any thread count, N=1 forces the sequential paths.
// --simd auto|avx2|scalar (any subcommand; DD_SIMD equivalently)
// selects the counting-kernel dispatch — bit-identical either way.
//   ddtool discover  --input clean.csv [--max-lhs 2] [--top 10]
//                    [--dmax 10] [--max-pairs 50000]
//                    [--approx] [--sample_target 100000] [--seed 7]
//                    [--no_blocking]  (one shared stratified sample
//                     serves every candidate rule; utilities print
//                     with their error bounds)
//   ddtool append    --rows new.csv --lhs a,b --rhs c [--input base.csv]
//                    [--batch 16] [--retire 0] [--drift 0.5]
//                    [--dmax 10] [--metric ...] [--algo ...] [--json]
//                    [--trace_json report.json]
//                    (feeds base.csv, then new.csv in --batch-row
//                     batches, through the incremental maintenance
//                     engine; --retire k deletes the k oldest live rows
//                     per batch; --drift sets the re-determination
//                     drift bound as a fraction of the published
//                     pattern's utility lead, negative = re-determine
//                     every batch; prints the final threshold)
//   ddtool watch     same flags as append, but streams one change-feed
//                    line per batch (drift, bound, re-determined or
//                    kept, published pattern) instead of only the
//                    final state; feed JSON lines carry a per-run
//                    run_id and a monotonically increasing seq
//   ddtool serve     long-running daemon: loads --input for the base
//                    instance and schema, then reads headerless CSV
//                    rows from stdin, applying them in --batch-row
//                    chunks until EOF; same feed lines as watch
//   ddtool prof      offline consumer of .folded CPU profiles (from
//                    --profile or GET /debug/prof):
//                    ddtool prof a.folded [b.folded ...] [--top N]
//                      [--json] [--merge out.folded]   hot-function
//                      table (or JSON summary) of the merged inputs
//                    ddtool prof --diff before.folded after.folded
//                      [--top N]   per-function self-sample deltas
//
// Live telemetry (every subcommand):
//   --metrics_port N     embedded HTTP server: GET /metrics (Prometheus
//                        text exposition) and GET /healthz (N=0 picks
//                        an ephemeral port, printed on stderr)
//   --series out.jsonl   FTDC-style sampler: snapshot the metrics
//                        registry every --sample_period_ms (default
//                        1000), append delta-encoded JSONL frames
//   --run_id ID          correlation id stamped on feed lines and
//                        sampler frames (default: derived from clock
//                        and pid)
//   --chrome_trace f.json  write the span tree as Chrome trace-event
//                        JSON (load in Perfetto / chrome://tracing);
//                        with pool stats on, pooled phases get real
//                        per-worker-slot tracks from the chunk timeline
//   --pool_stats         record per-worker pool execution stats (chunk
//                        counts, busy/wait time) even without other
//                        telemetry flags; any of --chrome_trace,
//                        --trace_json, --metrics_port, --series turns
//                        the collector on implicitly. Surfaces as
//                        pool.* metrics, the run report's "parallel"
//                        section, and worker tracks in the trace.
//   --profile            run the subcommand under the sampling CPU
//                        profiler (src/obs/prof): per-thread SIGPROF
//                        timers, stacks tagged with the active trace
//                        span and pool phase. Writes <out>.folded
//                        (flamegraph.pl-ready collapsed stacks) and
//                        <out>.json (summary); <out> defaults to
//                        ddtool.<command>.prof, override with
//                        --profile_out PREFIX. The run report gains a
//                        "profile" section.
//   --profile_hz N       samples per second of each thread's CPU time
//                        (default 99; implies --profile)
//
// Exit status 0 on success, 1 on bad usage or data errors.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "approx/refine.h"
#include "common/build_info.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "core/determiner.h"
#include "core/result_filter.h"
#include "core/result_io.h"
#include "core/simd_count.h"
#include "incr/maintenance.h"
#include "data/corruptor.h"
#include "data/csv.h"
#include "data/generators.h"
#include "detect/violation_detector.h"
#include "discover/rule_explorer.h"
#include "matching/builder.h"
#include "matching/serialization.h"
#include "obs/diag/crash_dump.h"
#include "obs/diag/dump_reader.h"
#include "obs/diag/flight_recorder.h"
#include "obs/diag/watchdog.h"
#include "obs/explain/audit.h"
#include "obs/explain/recorder.h"
#include "obs/export/chrome_trace.h"
#include "obs/export/http_server.h"
#include "obs/export/sampler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/pool_stats.h"
#include "obs/prof/folded.h"
#include "obs/prof/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ddtool "
      "<generate|determine|explain|detect|discover|append|watch|serve|diag|"
      "prof> [flags]\n"
      "       ddtool --version\n"
      "see the header of tools/ddtool.cc or README.md for flags\n");
  return 1;
}

int Fail(const dd::Status& status) {
  std::fprintf(stderr, "ddtool: %s\n", status.ToString().c_str());
  return 1;
}

// Applies repeated --metric attr=name flags onto matching options.
dd::Status ApplyMetricFlags(const dd::ArgParser& args,
                            dd::MatchingOptions* options) {
  for (const auto& spec : args.GetAll("metric")) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      return dd::Status::InvalidArgument("--metric expects attr=name, got '" +
                                         spec + "'");
    }
    options->metric_overrides[spec.substr(0, eq)] = spec.substr(eq + 1);
  }
  return dd::Status::Ok();
}

dd::Result<dd::MatchingOptions> MatchingFromFlags(const dd::ArgParser& args) {
  dd::MatchingOptions options;
  DD_ASSIGN_OR_RETURN(std::int64_t dmax, args.GetInt("dmax", 10));
  DD_ASSIGN_OR_RETURN(std::int64_t max_pairs, args.GetInt("max-pairs", 0));
  DD_ASSIGN_OR_RETURN(std::int64_t seed, args.GetInt("seed", 1));
  options.dmax = static_cast<int>(dmax);
  options.max_pairs = static_cast<std::size_t>(max_pairs);
  options.seed = static_cast<std::uint64_t>(seed);
  DD_RETURN_IF_ERROR(ApplyMetricFlags(args, &options));
  return options;
}

// Shared by determine / append / watch: --top, --algo, --order,
// --provider.
dd::Result<dd::DetermineOptions> DetermineFromFlags(const dd::ArgParser& args) {
  dd::DetermineOptions options;
  DD_ASSIGN_OR_RETURN(std::int64_t top, args.GetInt("top", 5));
  options.top_l = static_cast<std::size_t>(top);
  options.provider = args.GetString("provider", "scan");
  const std::string algo = args.GetString("algo", "DAP+PAP");
  if (algo == "DA+PA") {
    options.lhs_algorithm = dd::LhsAlgorithm::kDa;
    options.rhs_algorithm = dd::RhsAlgorithm::kPa;
  } else if (algo == "DA+PAP") {
    options.lhs_algorithm = dd::LhsAlgorithm::kDa;
    options.rhs_algorithm = dd::RhsAlgorithm::kPap;
    options.order = dd::ProcessingOrder::kMidFirst;
  } else if (algo == "DAP+PAP") {
    options.lhs_algorithm = dd::LhsAlgorithm::kDap;
    options.rhs_algorithm = dd::RhsAlgorithm::kPap;
  } else {
    return dd::Status::InvalidArgument("--algo must be DA+PA|DA+PAP|DAP+PAP");
  }
  if (args.GetString("order", "top") == "mid") {
    options.order = dd::ProcessingOrder::kMidFirst;
  }
  return options;
}

// --approx family shared by determine / discover. The sample seed rides
// on --seed (also the matching-build sampling seed; approx builds
// reject --max-pairs so the two uses never collide).
dd::Result<dd::approx::ApproxOptions> ApproxFromFlags(
    const dd::ArgParser& args) {
  dd::approx::ApproxOptions options;
  DD_ASSIGN_OR_RETURN(std::int64_t target,
                      args.GetInt("sample_target", 100000));
  if (target < 1) {
    return dd::Status::InvalidArgument("--sample_target must be >= 1");
  }
  options.sample_target = static_cast<std::uint64_t>(target);
  DD_ASSIGN_OR_RETURN(options.epsilon, args.GetDouble("epsilon", 0.01));
  if (options.epsilon < 0) {
    return dd::Status::InvalidArgument("--epsilon must be >= 0");
  }
  DD_ASSIGN_OR_RETURN(std::int64_t seed, args.GetInt("seed", 7));
  options.seed = static_cast<std::uint64_t>(seed);
  options.lsh.enabled = !args.Has("no_blocking");
  return options;
}

// Writes the global span-tree + metrics run report when --trace_json
// was given. Returns non-OK on I/O failure.
dd::Status MaybeWriteTraceReport(const dd::ArgParser& args,
                                 const std::string& run_name) {
  const std::string path = args.GetString("trace_json");
  if (path.empty()) return dd::Status::Ok();
  dd::obs::RunReport report = dd::obs::CaptureRunReport(run_name);
  DD_RETURN_IF_ERROR(dd::obs::WriteRunReportJson(report, path));
  std::fprintf(stderr, "wrote trace report to %s\n", path.c_str());
  return dd::Status::Ok();
}

// Writes the span tree as Chrome trace-event JSON when --chrome_trace
// was given. The pool-stats snapshot rides along so pooled phases get
// real per-worker-slot tracks (empty snapshot -> span tracks only).
dd::Status MaybeWriteChromeTrace(const dd::ArgParser& args) {
  const std::string path = args.GetString("chrome_trace");
  if (path.empty()) return dd::Status::Ok();
  DD_RETURN_IF_ERROR(dd::obs::WriteChromeTrace(
      dd::obs::Tracer::Global().Snapshot(),
      dd::obs::PoolStatsCollector::Global().Snapshot(), path));
  std::fprintf(stderr, "wrote chrome trace to %s\n", path.c_str());
  return dd::Status::Ok();
}

// Correlation id for feed lines and sampler frames when the user did
// not pass --run_id: wall clock microseconds + pid, hex.
std::string GenerateRunId() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  return dd::StrFormat("%011llx-%04x",
                       static_cast<unsigned long long>(us) & 0xfffffffffffULL,
                       static_cast<unsigned>(::getpid()) & 0xffff);
}

// Live telemetry started from flags: the /metrics endpoint
// (--metrics_port) and the FTDC-style sampler (--series /
// --sample_period_ms). Both are optional and shut down on destruction.
struct Telemetry {
  std::string run_id;
  std::unique_ptr<dd::obs::MetricsHttpServer> server;
  std::unique_ptr<dd::obs::MetricsSampler> sampler;
};

dd::Result<Telemetry> StartTelemetry(const dd::ArgParser& args) {
  Telemetry telemetry;
  telemetry.run_id = args.GetString("run_id");
  if (telemetry.run_id.empty()) telemetry.run_id = GenerateRunId();
  if (args.Has("metrics_port")) {
    DD_ASSIGN_OR_RETURN(std::int64_t port, args.GetInt("metrics_port", 0));
    DD_ASSIGN_OR_RETURN(
        telemetry.server,
        dd::obs::MetricsHttpServer::Start(static_cast<int>(port)));
    std::fprintf(stderr, "run %s: serving /metrics and /healthz on port %d\n",
                 telemetry.run_id.c_str(), telemetry.server->port());
  }
  const std::string series = args.GetString("series");
  if (!series.empty() || args.Has("sample_period_ms")) {
    DD_ASSIGN_OR_RETURN(std::int64_t period,
                        args.GetInt("sample_period_ms", 1000));
    dd::obs::SamplerOptions options;
    options.period_ms = static_cast<int>(period);
    options.series_path = series;
    options.run_id = telemetry.run_id;
    DD_ASSIGN_OR_RETURN(telemetry.sampler,
                        dd::obs::MetricsSampler::Start(std::move(options)));
  }
  return telemetry;
}

// The --print_stats summary: search cost in the units of the paper's
// evaluation (pruning rate of Figure 4, candidates evaluated, rows
// scanned by the provider).
void PrintSearchStats(const dd::DetermineResult& result) {
  const dd::DaStats& s = result.stats;
  const dd::ProviderStats& p = result.provider_stats;
  std::fprintf(stderr, "search stats:\n");
  std::fprintf(stderr, "  lhs candidates evaluated   %zu of %zu\n", s.lhs_evaluated,
              s.lhs_total);
  std::fprintf(stderr, "  rhs lattice size           %zu\n", s.rhs.lattice_size);
  std::fprintf(stderr, "  rhs candidates evaluated   %zu\n", s.rhs.evaluated);
  std::fprintf(stderr, "  rhs candidates pruned      %zu\n", s.rhs.pruned);
  std::fprintf(stderr, "  pruning rate               %.4f\n", s.PruningRate());
  std::fprintf(stderr, "  provider lhs evaluations   %llu\n",
              static_cast<unsigned long long>(p.lhs_evaluations));
  std::fprintf(stderr, "  provider xy evaluations    %llu\n",
              static_cast<unsigned long long>(p.xy_evaluations));
  std::fprintf(stderr, "  provider rows scanned      %llu\n",
              static_cast<unsigned long long>(p.rows_scanned));
}

// Parses "4,2->3,1" into a Pattern with the given arities.
dd::Result<dd::Pattern> ParsePattern(const std::string& text,
                                     std::size_t lhs_size,
                                     std::size_t rhs_size) {
  const std::size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return dd::Status::InvalidArgument(
        "--pattern expects 'x1,x2->y1,y2', got '" + text + "'");
  }
  auto parse_side = [](const std::string& side,
                       std::size_t expected) -> dd::Result<dd::Levels> {
    dd::Levels levels;
    for (const auto& token : dd::SplitFlagList(side)) {
      double value = 0.0;
      if (!dd::ParseDouble(token, &value) || value < 0) {
        return dd::Status::InvalidArgument("bad threshold '" + token + "'");
      }
      levels.push_back(static_cast<int>(value));
    }
    if (levels.size() != expected) {
      return dd::Status::InvalidArgument(dd::StrFormat(
          "pattern side has %zu thresholds, rule needs %zu", levels.size(),
          expected));
    }
    return levels;
  };
  dd::Pattern pattern;
  DD_ASSIGN_OR_RETURN(pattern.lhs, parse_side(text.substr(0, arrow), lhs_size));
  DD_ASSIGN_OR_RETURN(pattern.rhs, parse_side(text.substr(arrow + 2), rhs_size));
  return pattern;
}

int RunGenerate(const dd::ArgParser& args) {
  const std::string dataset = args.GetString("dataset", "restaurant");
  const std::string out = args.GetString("out");
  if (out.empty()) return Fail(dd::Status::InvalidArgument("--out required"));
  auto entities = args.GetInt("entities", 200);
  if (!entities.ok()) return Fail(entities.status());
  auto seed = args.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());

  dd::GeneratedData data;
  if (dataset == "hotel") {
    data = dd::HotelExample();
  } else if (dataset == "cora") {
    dd::CoraOptions options;
    options.num_entities = static_cast<std::size_t>(*entities);
    options.seed = static_cast<std::uint64_t>(*seed);
    data = dd::GenerateCora(options);
  } else if (dataset == "restaurant") {
    dd::RestaurantOptions options;
    options.num_entities = static_cast<std::size_t>(*entities);
    options.seed = static_cast<std::uint64_t>(*seed);
    data = dd::GenerateRestaurant(options);
  } else if (dataset == "citeseer") {
    dd::CiteseerOptions options;
    options.num_entities = static_cast<std::size_t>(*entities);
    options.seed = static_cast<std::uint64_t>(*seed);
    data = dd::GenerateCiteseer(options);
  } else {
    return Fail(dd::Status::InvalidArgument(
        "--dataset must be hotel|cora|restaurant|citeseer"));
  }

  dd::Status write = dd::WriteCsvFile(data.relation, out);
  if (!write.ok()) return Fail(write);
  std::printf("wrote %zu rows to %s\n", data.relation.num_rows(), out.c_str());

  const std::string dirty_out = args.GetString("dirty-out");
  if (!dirty_out.empty()) {
    auto fraction = args.GetDouble("corrupt-fraction", 0.05);
    if (!fraction.ok()) return Fail(fraction.status());
    std::vector<std::string> attrs =
        dd::SplitFlagList(args.GetString("corrupt-attrs"));
    if (attrs.empty()) {
      return Fail(dd::Status::InvalidArgument(
          "--dirty-out requires --corrupt-attrs a,b"));
    }
    dd::CorruptorOptions coptions;
    coptions.corrupt_fraction = *fraction;
    coptions.seed = static_cast<std::uint64_t>(*seed) + 1;
    auto corrupted = dd::InjectViolations(data, attrs, coptions);
    if (!corrupted.ok()) return Fail(corrupted.status());
    write = dd::WriteCsvFile(corrupted->dirty, dirty_out);
    if (!write.ok()) return Fail(write);
    std::printf("wrote dirty copy (%zu corrupted rows) to %s\n",
                corrupted->corrupted_rows.size(), dirty_out.c_str());

    const std::string truth_out = args.GetString("truth-out");
    if (!truth_out.empty()) {
      dd::Schema schema({{"row_i", dd::AttributeType::kNumeric},
                         {"row_j", dd::AttributeType::kNumeric}});
      dd::Relation truth(schema);
      for (const auto& [i, j] : corrupted->truth_pairs) {
        dd::Status s = truth.AddRow(
            {dd::StrFormat("%u", i), dd::StrFormat("%u", j)});
        if (!s.ok()) return Fail(s);
      }
      write = dd::WriteCsvFile(truth, truth_out);
      if (!write.ok()) return Fail(write);
      std::printf("wrote %zu truth pairs to %s\n",
                  corrupted->truth_pairs.size(), truth_out.c_str());
    }
  }
  return 0;
}

// Shared by determine / explain: the matching relation, either
// deserialized from --load-matching or built from --input.
dd::Result<dd::MatchingRelation> LoadMatching(const dd::ArgParser& args,
                                              const dd::RuleSpec& rule) {
  dd::obs::TraceSpan span("load_input");
  const std::string load_matching = args.GetString("load-matching");
  if (!load_matching.empty()) return dd::ReadMatchingFile(load_matching);
  const std::string input = args.GetString("input");
  if (input.empty()) {
    return dd::Status::InvalidArgument(
        "--input (CSV) or --load-matching (.ddmr) required");
  }
  DD_ASSIGN_OR_RETURN(dd::Relation relation, dd::ReadCsvFile(input));
  DD_ASSIGN_OR_RETURN(dd::MatchingOptions moptions, MatchingFromFlags(args));
  return dd::BuildMatchingRelation(relation, rule.AllAttributes(), moptions);
}

// The --approx leg of `ddtool determine`: progressive-refinement
// determination over the stratified sample instead of the exact
// matching relation.
int RunDetermineApprox(const dd::ArgParser& args, const dd::RuleSpec& rule) {
  if (args.Has("save-matching") || args.Has("load-matching")) {
    return Fail(dd::Status::InvalidArgument(
        "--approx never materializes the matching relation; "
        "--save-matching/--load-matching require an exact run"));
  }
  const std::string input = args.GetString("input");
  if (input.empty()) {
    return Fail(dd::Status::InvalidArgument("--input (CSV) required"));
  }
  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());
  auto relation = dd::ReadCsvFile(input);
  if (!relation.ok()) return Fail(relation.status());

  auto moptions = MatchingFromFlags(args);
  if (!moptions.ok()) return Fail(moptions.status());
  dd::approx::ApproxDetermineOptions options;
  auto doptions = DetermineFromFlags(args);
  if (!doptions.ok()) return Fail(doptions.status());
  options.determine = *doptions;
  auto aoptions = ApproxFromFlags(args);
  if (!aoptions.ok()) return Fail(aoptions.status());
  options.approx = *aoptions;

  auto result =
      dd::approx::ApproxDetermineThresholds(*relation, rule, *moptions, options);
  if (!result.ok()) return Fail(result.status());
  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status = MaybeWriteTraceReport(
      args, "ddtool determine --approx " + args.GetString("algo", "DAP+PAP"));
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);

  if (args.Has("json")) {
    std::printf("%s\n", dd::approx::ApproxResultToJson(*result, rule).c_str());
    if (args.Has("print_stats")) PrintSearchStats(result->determine);
    return 0;
  }
  std::printf(
      "approx determination: %zu round(s), %s, sample fraction %.4f "
      "(%llu near + %llu sampled of %llu pairs)%s\n",
      result->rounds, result->converged ? "converged" : "round cap hit",
      result->sample_fraction,
      static_cast<unsigned long long>(result->near_pairs),
      static_cast<unsigned long long>(result->sampled_pairs),
      static_cast<unsigned long long>(result->total_pairs),
      result->exhaustive ? " [exhaustive = exact]" : " [estimated]");
  std::printf("determined %zu pattern(s) in %.3fs (prior CQ %.3f)\n",
              result->determine.patterns.size(),
              result->determine.elapsed_seconds,
              result->determine.prior_mean_cq);
  std::printf("%-30s %8s %8s %6s %9s %21s\n", "pattern", "D", "C", "Q",
              "utility", "utility 95% bounds");
  for (std::size_t i = 0; i < result->determine.patterns.size(); ++i) {
    const auto& p = result->determine.patterns[i];
    const auto& iv = result->intervals[i];
    std::printf("%-30s %8.4f %8.4f %6.2f %9.4f   [%8.4f, %8.4f]\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.measures.quality, p.utility,
                iv.utility.lo, iv.utility.hi);
  }
  if (args.Has("print_stats")) PrintSearchStats(result->determine);
  return 0;
}

int RunDetermine(const dd::ArgParser& args) {
  std::vector<std::string> lhs = dd::SplitFlagList(args.GetString("lhs"));
  std::vector<std::string> rhs = dd::SplitFlagList(args.GetString("rhs"));
  if (lhs.empty() || rhs.empty()) {
    return Fail(dd::Status::InvalidArgument("--lhs and --rhs required"));
  }
  dd::RuleSpec rule{std::move(lhs), std::move(rhs)};
  if (args.Has("approx")) return RunDetermineApprox(args, rule);
  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());

  dd::Result<dd::MatchingRelation> matching = LoadMatching(args, rule);
  if (!matching.ok()) return Fail(matching.status());
  if (!args.Has("json")) {
    // Keep stdout pure JSON under --json (pipe-friendly).
    std::printf("matching relation: %zu tuples (dmax=%d)\n",
                matching->num_tuples(), matching->dmax());
  }
  const std::string save_matching = args.GetString("save-matching");
  if (!save_matching.empty()) {
    dd::Status save = dd::WriteMatchingFile(*matching, save_matching);
    if (!save.ok()) return Fail(save);
    std::printf("saved matching relation to %s\n", save_matching.c_str());
  }

  auto doptions = DetermineFromFlags(args);
  if (!doptions.ok()) return Fail(doptions.status());

  auto result = dd::DetermineThresholds(*matching, rule, *doptions);
  if (!result.ok()) return Fail(result.status());
  if (args.Has("collapse")) {
    result->patterns = dd::CollapseEquivalent(std::move(result->patterns));
  }
  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status = MaybeWriteTraceReport(
      args, "ddtool determine " + args.GetString("algo", "DAP+PAP"));
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);
  if (args.Has("json")) {
    std::printf("%s\n", dd::DetermineResultToJson(*result, rule).c_str());
    if (args.Has("print_stats")) PrintSearchStats(*result);
    return 0;
  }
  std::printf("determined %zu pattern(s) in %.3fs (pruning rate %.3f, prior "
              "CQ %.3f)\n",
              result->patterns.size(), result->elapsed_seconds,
              result->stats.PruningRate(), result->prior_mean_cq);
  std::printf("%-30s %8s %8s %8s %6s %9s\n", "pattern", "D", "C", "S", "Q",
              "utility");
  for (const auto& p : result->patterns) {
    std::printf("%-30s %8.4f %8.4f %8.4f %6.2f %9.4f\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.measures.support, p.measures.quality,
                p.utility);
  }
  if (args.Has("print_stats")) PrintSearchStats(*result);
  return 0;
}

// Writes `content` to `path` (overwriting), fopen-based like the obs
// report writers.
dd::Status WriteTextFile(const std::string& content, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return dd::Status::Internal("cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int closed = std::fclose(f);
  if (written != content.size() || closed != 0) {
    return dd::Status::Internal("short write to " + path);
  }
  return dd::Status::Ok();
}

// `ddtool explain`: a determination run with the EXPLAIN recorder on,
// followed by the audit consumers — JSON audit document, pruning
// waterfall, winner-vs-runner-up diff, utility-landscape export.
int RunExplain(const dd::ArgParser& args) {
  std::vector<std::string> lhs = dd::SplitFlagList(args.GetString("lhs"));
  std::vector<std::string> rhs = dd::SplitFlagList(args.GetString("rhs"));
  if (lhs.empty() || rhs.empty()) {
    return Fail(dd::Status::InvalidArgument("--lhs and --rhs required"));
  }
  dd::RuleSpec rule{std::move(lhs), std::move(rhs)};
  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());

  // --approx audits the sampled run instead: the snapshot carries the
  // "estimated" marker and the waterfall totals come from estimated
  // counts.
  const bool approx_mode = args.Has("approx");
  std::optional<dd::Relation> relation;
  std::optional<dd::MatchingRelation> matching;
  if (approx_mode) {
    if (args.Has("save-matching") || args.Has("load-matching")) {
      return Fail(dd::Status::InvalidArgument(
          "--approx never materializes the matching relation; "
          "--save-matching/--load-matching require an exact run"));
    }
    const std::string input = args.GetString("input");
    if (input.empty()) {
      return Fail(dd::Status::InvalidArgument("--input (CSV) required"));
    }
    auto rel = dd::ReadCsvFile(input);
    if (!rel.ok()) return Fail(rel.status());
    relation.emplace(std::move(*rel));
  } else {
    auto loaded = LoadMatching(args, rule);
    if (!loaded.ok()) return Fail(loaded.status());
    matching.emplace(std::move(*loaded));
  }
  auto doptions = DetermineFromFlags(args);
  if (!doptions.ok()) return Fail(doptions.status());

  dd::obs::ExplainConfig config;
  auto sample = args.GetInt("explain_sample", 1);
  if (!sample.ok()) return Fail(sample.status());
  if (*sample < 1) {
    return Fail(dd::Status::InvalidArgument("--explain_sample must be >= 1"));
  }
  config.sample_every = static_cast<std::size_t>(*sample);
  auto ring = args.GetInt("ring_capacity", 1 << 16);
  if (!ring.ok()) return Fail(ring.status());
  if (*ring < 1) {
    return Fail(dd::Status::InvalidArgument("--ring_capacity must be >= 1"));
  }
  config.ring_capacity = static_cast<std::size_t>(*ring);

  dd::obs::ExplainRecorder& recorder = dd::obs::ExplainRecorder::Global();
  recorder.Enable(config);
  std::optional<dd::DetermineResult> result;
  dd::Status run_status = dd::Status::Ok();
  if (approx_mode) {
    auto moptions = MatchingFromFlags(args);
    if (!moptions.ok()) {
      recorder.Disable();
      return Fail(moptions.status());
    }
    dd::approx::ApproxDetermineOptions approx_options;
    approx_options.determine = *doptions;
    auto aoptions = ApproxFromFlags(args);
    if (!aoptions.ok()) {
      recorder.Disable();
      return Fail(aoptions.status());
    }
    approx_options.approx = *aoptions;
    auto approx_result = dd::approx::ApproxDetermineThresholds(
        *relation, rule, *moptions, approx_options);
    if (approx_result.ok()) {
      result.emplace(std::move(approx_result->determine));
    } else {
      run_status = approx_result.status();
    }
  } else {
    auto exact = dd::DetermineThresholds(*matching, rule, *doptions);
    if (exact.ok()) {
      result.emplace(std::move(*exact));
    } else {
      run_status = exact.status();
    }
  }
  const dd::obs::ExplainSnapshot snapshot = recorder.Snapshot();
  recorder.Disable();
  if (!run_status.ok()) return Fail(run_status);

  const std::string audit =
      dd::ExplainAuditToJson(snapshot, *result, rule, doptions->utility);
  const std::string audit_path = args.GetString("audit_json");
  if (!audit_path.empty()) {
    dd::Status written = WriteTextFile(audit, audit_path);
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "wrote audit document to %s\n", audit_path.c_str());
  }
  const std::string landscape_path = args.GetString("landscape");
  if (!landscape_path.empty()) {
    const bool jsonl = landscape_path.size() >= 6 &&
                       landscape_path.rfind(".jsonl") ==
                           landscape_path.size() - 6;
    const std::string landscape =
        jsonl ? dd::LandscapeToJsonl(snapshot, rule, doptions->utility,
                                     result->prior_mean_cq)
              : dd::LandscapeToCsv(snapshot, rule, doptions->utility,
                                   result->prior_mean_cq);
    dd::Status written = WriteTextFile(landscape, landscape_path);
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "wrote utility landscape to %s\n",
                 landscape_path.c_str());
  }

  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status = MaybeWriteTraceReport(
      args, "ddtool explain " + args.GetString("algo", "DAP+PAP"));
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);

  if (args.Has("json")) {
    std::printf("%s", audit.c_str());
    return 0;
  }
  if (approx_mode) {
    std::printf("approx run over %zu rows%s\n", relation->num_rows(),
                snapshot.estimated ? " [estimated counts]" : "");
  } else {
    std::printf("matching relation: %zu tuples (dmax=%d)\n",
                matching->num_tuples(), matching->dmax());
  }
  std::printf("%s: %" PRIu64 " event(s) recorded, %" PRIu64
              " sampled out, %" PRIu64 " dropped (sample_every=%zu)\n",
              snapshot.run_label.c_str(), snapshot.recorded,
              snapshot.sampled_out, snapshot.dropped,
              snapshot.config.sample_every);
  std::printf("\n%s", dd::PruningWaterfallToText(snapshot, *result).c_str());
  std::printf("\n%s", dd::WhyChosenToText(*result).c_str());
  std::printf("\n%-30s %8s %8s %8s %6s %9s\n", "pattern", "D", "C", "S", "Q",
              "utility");
  for (const auto& p : result->patterns) {
    std::printf("%-30s %8.4f %8.4f %8.4f %6.2f %9.4f\n",
                dd::PatternToString(p.pattern).c_str(), p.measures.d,
                p.measures.confidence, p.measures.support, p.measures.quality,
                p.utility);
  }
  if (args.Has("print_stats")) PrintSearchStats(*result);
  return 0;
}

int RunDetect(const dd::ArgParser& args) {
  const std::string input = args.GetString("input");
  if (input.empty()) return Fail(dd::Status::InvalidArgument("--input required"));
  std::vector<std::string> lhs = dd::SplitFlagList(args.GetString("lhs"));
  std::vector<std::string> rhs = dd::SplitFlagList(args.GetString("rhs"));
  if (lhs.empty() || rhs.empty()) {
    return Fail(dd::Status::InvalidArgument("--lhs and --rhs required"));
  }
  auto relation = dd::ReadCsvFile(input);
  if (!relation.ok()) return Fail(relation.status());
  auto moptions = MatchingFromFlags(args);
  if (!moptions.ok()) return Fail(moptions.status());
  auto pattern =
      ParsePattern(args.GetString("pattern"), lhs.size(), rhs.size());
  if (!pattern.ok()) return Fail(pattern.status());

  dd::RuleSpec rule{std::move(lhs), std::move(rhs)};
  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());
  auto found = dd::DetectViolations(*relation, rule, *pattern, *moptions);
  if (!found.ok()) return Fail(found.status());
  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status = MaybeWriteTraceReport(args, "ddtool detect");
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);
  std::printf("%zu violating pair(s)\n", found->size());

  const std::string out = args.GetString("out");
  if (!out.empty()) {
    dd::Schema schema({{"row_i", dd::AttributeType::kNumeric},
                       {"row_j", dd::AttributeType::kNumeric}});
    dd::Relation pairs(schema);
    for (const auto& [i, j] : *found) {
      dd::Status s =
          pairs.AddRow({dd::StrFormat("%u", i), dd::StrFormat("%u", j)});
      if (!s.ok()) return Fail(s);
    }
    dd::Status write = dd::WriteCsvFile(pairs, out);
    if (!write.ok()) return Fail(write);
    std::printf("wrote pairs to %s\n", out.c_str());
  } else {
    for (std::size_t k = 0; k < found->size() && k < 20; ++k) {
      std::printf("  (%u, %u)\n", (*found)[k].first, (*found)[k].second);
    }
    if (found->size() > 20) std::printf("  ... (%zu more)\n", found->size() - 20);
  }
  return 0;
}

int RunDiscover(const dd::ArgParser& args) {
  const std::string input = args.GetString("input");
  if (input.empty()) return Fail(dd::Status::InvalidArgument("--input required"));
  auto relation = dd::ReadCsvFile(input);
  if (!relation.ok()) return Fail(relation.status());

  dd::ExploreOptions options;
  auto moptions = MatchingFromFlags(args);
  if (!moptions.ok()) return Fail(moptions.status());
  options.matching = *moptions;
  if (args.Has("approx")) {
    // The stratified sample owns the pair budget (--sample_target);
    // --max-pairs would make the build reject below.
    options.approx = true;
    auto aoptions = ApproxFromFlags(args);
    if (!aoptions.ok()) return Fail(aoptions.status());
    options.approx_options = *aoptions;
  } else if (options.matching.max_pairs == 0) {
    options.matching.max_pairs = 50000;
  }
  auto max_lhs = args.GetInt("max-lhs", 2);
  if (!max_lhs.ok()) return Fail(max_lhs.status());
  options.max_lhs_size = static_cast<std::size_t>(*max_lhs);
  auto top = args.GetInt("top", 10);
  if (!top.ok()) return Fail(top.status());
  options.top_rules = static_cast<std::size_t>(*top);

  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());
  auto rules = dd::DiscoverRules(*relation, options);
  if (!rules.ok()) return Fail(rules.status());
  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status = MaybeWriteTraceReport(args, "ddtool discover");
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);
  std::printf("%zu rule(s):\n", rules->size());
  for (const auto& r : *rules) {
    if (r.estimated) {
      std::printf(
          "  [%s] -> [%s]  pattern %s  C=%.3f Q=%.2f utility~%.4f "
          "[%.4f, %.4f]\n",
          dd::Join(r.rule.lhs, ", ").c_str(),
          dd::Join(r.rule.rhs, ", ").c_str(),
          dd::PatternToString(r.best.pattern).c_str(),
          r.best.measures.confidence, r.best.measures.quality, r.best.utility,
          r.utility.lo, r.utility.hi);
    } else {
      std::printf("  [%s] -> [%s]  pattern %s  C=%.3f Q=%.2f utility=%.4f\n",
                  dd::Join(r.rule.lhs, ", ").c_str(),
                  dd::Join(r.rule.rhs, ", ").c_str(),
                  dd::PatternToString(r.best.pattern).c_str(),
                  r.best.measures.confidence, r.best.measures.quality,
                  r.best.utility);
    }
  }
  return 0;
}

// Streams one change-feed line per applied batch (watch / serve).
// JSON lines are stamped with the run_id and a monotonically
// increasing seq so they join against sampler frames and server logs.
class FeedPrinter {
 public:
  FeedPrinter(bool json, std::string run_id)
      : json_(json), run_id_(std::move(run_id)) {}

  void Print(const dd::MaintenanceEngine& engine, const dd::BatchOutcome& o,
             std::size_t inserts, std::size_t deletes) {
    ++seq_;
    const dd::DeterminedPattern* pub = engine.published();
    const std::string pattern =
        pub ? dd::PatternToString(pub->pattern) : std::string("none");
    if (json_) {
      std::printf(
          "{\"run_id\":\"%s\",\"seq\":%llu,\"batch\":%llu,\"inserts\":%zu,"
          "\"deletes\":%zu,\"pairs_computed\":%zu,\"rows_removed\":%zu,"
          "\"drift\":%.6g,\"bound\":%.6g,\"redetermined\":%s,"
          "\"published\":\"%s\",\"utility\":%.6g}\n",
          run_id_.c_str(), static_cast<unsigned long long>(seq_),
          static_cast<unsigned long long>(o.batch_seq), inserts, deletes,
          o.pairs_computed, o.matching_removed, o.drift, o.bound,
          o.redetermined ? "true" : "false", pattern.c_str(),
          pub ? pub->utility : 0.0);
    } else {
      std::printf(
          "batch %llu: +%zu/-%zu rows, %zu pairs computed, drift %.4g "
          "(bound %.4g) -> %s, published %s (utility %.4f)\n",
          static_cast<unsigned long long>(o.batch_seq), inserts, deletes,
          o.pairs_computed, o.drift, o.bound,
          o.redetermined ? "re-determined" : "kept", pattern.c_str(),
          pub ? pub->utility : 0.0);
    }
    std::fflush(stdout);
  }

 private:
  bool json_;
  std::string run_id_;
  std::uint64_t seq_ = 0;
};

// Engine construction shared by append / watch / serve.
dd::Result<dd::MaintenanceEngine> EngineFromFlags(const dd::ArgParser& args,
                                                  const dd::Schema& schema) {
  std::vector<std::string> lhs = dd::SplitFlagList(args.GetString("lhs"));
  std::vector<std::string> rhs = dd::SplitFlagList(args.GetString("rhs"));
  if (lhs.empty() || rhs.empty()) {
    return dd::Status::InvalidArgument("--lhs and --rhs required");
  }
  dd::MaintenanceOptions options;
  DD_ASSIGN_OR_RETURN(options.incremental.matching, MatchingFromFlags(args));
  DD_ASSIGN_OR_RETURN(options.determine, DetermineFromFlags(args));
  DD_ASSIGN_OR_RETURN(options.drift_fraction, args.GetDouble("drift", 0.5));
  return dd::MaintenanceEngine::Create(
      schema, dd::RuleSpec{std::move(lhs), std::move(rhs)}, options);
}

// Prints the end-of-run summary shared by append / watch / serve.
int PrintFinalState(const dd::MaintenanceEngine& engine, bool watch,
                    bool json) {
  const dd::DeterminedPattern* pub = engine.published();
  const std::string pattern =
      pub ? dd::PatternToString(pub->pattern) : std::string("none");
  if (json) {
    if (!watch) {
      std::printf(
          "{\"live\":%zu,\"matching\":%zu,\"redeterminations\":%llu,"
          "\"skipped\":%llu,\"updates\":%zu,\"published\":\"%s\","
          "\"utility\":%.6g}\n",
          engine.builder().store().num_live(),
          engine.builder().matching().num_tuples(),
          static_cast<unsigned long long>(engine.redeterminations()),
          static_cast<unsigned long long>(engine.skipped()),
          engine.updates().size(), pattern.c_str(), pub ? pub->utility : 0.0);
    }
    return 0;  // Watch keeps stdout to feed lines only under --json.
  }
  std::printf(
      "final: %zu live tuples, %zu matching tuples, %llu re-determinations "
      "(%llu skipped), %zu threshold update(s)\n",
      engine.builder().store().num_live(),
      engine.builder().matching().num_tuples(),
      static_cast<unsigned long long>(engine.redeterminations()),
      static_cast<unsigned long long>(engine.skipped()),
      engine.updates().size());
  if (pub != nullptr) {
    std::printf("published %s  D=%.4f C=%.4f S=%.4f Q=%.2f utility=%.4f\n",
                pattern.c_str(), pub->measures.d, pub->measures.confidence,
                pub->measures.support, pub->measures.quality, pub->utility);
  } else {
    std::printf("no threshold published (empty instance)\n");
  }
  return 0;
}

// Shared driver of `append` (prints the final state) and `watch`
// (streams one change-feed line per batch). Feeds --input as the first
// batch, then --rows in --batch-row chunks; --retire k deletes the k
// oldest live tuples with every chunk to exercise the delete path.
int RunIncremental(const dd::ArgParser& args, bool watch) {
  if (args.Has("approx")) {
    return Fail(dd::Status::InvalidArgument(
        "--approx is not supported for append/watch: incremental "
        "maintenance needs the exact matching relation it maintains "
        "(run determine or discover with --approx instead)"));
  }
  const std::string rows_path = args.GetString("rows");
  if (rows_path.empty()) {
    return Fail(
        dd::Status::InvalidArgument("--rows (CSV of rows to append) required"));
  }
  auto rows = dd::ReadCsvFile(rows_path);
  if (!rows.ok()) return Fail(rows.status());

  dd::Relation base;
  const std::string input = args.GetString("input");
  if (!input.empty()) {
    auto base_rel = dd::ReadCsvFile(input);
    if (!base_rel.ok()) return Fail(base_rel.status());
    if (!(base_rel->schema() == rows->schema())) {
      return Fail(dd::Status::InvalidArgument(
          "--input and --rows disagree on schema: " +
          base_rel->schema().ToString() + " vs " + rows->schema().ToString()));
    }
    base = std::move(*base_rel);
  }

  auto batch = args.GetInt("batch", 16);
  if (!batch.ok()) return Fail(batch.status());
  if (*batch < 1) {
    return Fail(dd::Status::InvalidArgument("--batch must be >= 1"));
  }
  auto retire = args.GetInt("retire", 0);
  if (!retire.ok()) return Fail(retire.status());
  const std::size_t batch_rows = static_cast<std::size_t>(*batch);
  const std::size_t retire_rows =
      *retire < 0 ? 0 : static_cast<std::size_t>(*retire);

  auto engine = EngineFromFlags(args, rows->schema());
  if (!engine.ok()) return Fail(engine.status());
  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());

  const bool json = args.Has("json");
  FeedPrinter printer(json, telemetry->run_id);
  // The heartbeat is armed only while a batch is being applied: the
  // feed loop legitimately idles between batches, and an armed-but-idle
  // heartbeat would read as a stall to the watchdog.
  static dd::obs::diag::Heartbeat* feed_heartbeat =
      dd::obs::diag::RegisterHeartbeat("feed.loop");
  auto feed = [&](const std::vector<std::vector<std::string>>& inserts,
                  const std::vector<std::uint32_t>& deletes) -> dd::Status {
    dd::obs::diag::ScopedHeartbeat scoped_heartbeat(feed_heartbeat);
    auto outcome = engine->ApplyBatch(inserts, deletes);
    if (!outcome.ok()) return outcome.status();
    dd::obs::diag::FlightRecord(dd::obs::diag::EventType::kServe, "feed_batch",
                                outcome->batch_seq, inserts.size());
    if (watch) printer.Print(*engine, *outcome, inserts.size(), deletes.size());
    return dd::Status::Ok();
  };

  if (base.num_rows() > 0) {
    std::vector<std::vector<std::string>> inserts;
    inserts.reserve(base.num_rows());
    for (std::size_t r = 0; r < base.num_rows(); ++r) {
      inserts.push_back(base.row(r));
    }
    dd::Status fed = feed(inserts, {});
    if (!fed.ok()) return Fail(fed);
  }
  for (std::size_t begin = 0; begin < rows->num_rows(); begin += batch_rows) {
    const std::size_t end = std::min(begin + batch_rows, rows->num_rows());
    std::vector<std::vector<std::string>> inserts;
    inserts.reserve(end - begin);
    for (std::size_t r = begin; r < end; ++r) inserts.push_back(rows->row(r));
    std::vector<std::uint32_t> deletes;
    if (retire_rows > 0) {
      const std::vector<std::uint32_t> live = engine->builder().store().LiveIds();
      deletes.assign(live.begin(),
                     live.begin() + std::min(retire_rows, live.size()));
    }
    dd::Status fed = feed(inserts, deletes);
    if (!fed.ok()) return Fail(fed);
  }

  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status =
      MaybeWriteTraceReport(args, watch ? "ddtool watch" : "ddtool append");
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);

  return PrintFinalState(*engine, watch, json);
}

// Long-running daemon: base instance from --input, then headerless CSV
// rows from stdin in --batch-row chunks until EOF. Telemetry (the
// /metrics port and the sampler) stays live the whole run — this is
// the subcommand meant to sit behind a scrape target.
int RunServe(const dd::ArgParser& args) {
  if (args.Has("approx")) {
    return Fail(dd::Status::InvalidArgument(
        "--approx is not supported for serve: incremental maintenance "
        "needs the exact matching relation it maintains (run determine "
        "or discover with --approx instead)"));
  }
  const std::string input = args.GetString("input");
  if (input.empty()) {
    return Fail(dd::Status::InvalidArgument(
        "--input (base CSV; also fixes the schema for stdin rows) required"));
  }
  auto base = dd::ReadCsvFile(input);
  if (!base.ok()) return Fail(base.status());

  auto batch = args.GetInt("batch", 16);
  if (!batch.ok()) return Fail(batch.status());
  if (*batch < 1) {
    return Fail(dd::Status::InvalidArgument("--batch must be >= 1"));
  }
  const std::size_t batch_rows = static_cast<std::size_t>(*batch);

  auto engine = EngineFromFlags(args, base->schema());
  if (!engine.ok()) return Fail(engine.status());
  auto telemetry = StartTelemetry(args);
  if (!telemetry.ok()) return Fail(telemetry.status());

  const bool json = args.Has("json");
  FeedPrinter printer(json, telemetry->run_id);
  // Armed only while applying: serve blocks on stdin indefinitely
  // between batches, which must not look like a stall.
  static dd::obs::diag::Heartbeat* serve_heartbeat =
      dd::obs::diag::RegisterHeartbeat("serve.loop");
  auto apply = [&](const std::vector<std::vector<std::string>>& inserts)
      -> dd::Status {
    dd::obs::diag::ScopedHeartbeat scoped_heartbeat(serve_heartbeat);
    auto outcome = engine->ApplyBatch(inserts, {});
    if (!outcome.ok()) return outcome.status();
    dd::obs::diag::FlightRecord(dd::obs::diag::EventType::kServe, "serve_batch",
                                outcome->batch_seq, inserts.size());
    printer.Print(*engine, *outcome, inserts.size(), 0);
    return dd::Status::Ok();
  };

  if (base->num_rows() > 0) {
    std::vector<std::vector<std::string>> inserts;
    inserts.reserve(base->num_rows());
    for (std::size_t r = 0; r < base->num_rows(); ++r) {
      inserts.push_back(base->row(r));
    }
    dd::Status fed = apply(inserts);
    if (!fed.ok()) return Fail(fed);
  }

  const std::size_t columns = base->schema().num_attributes();
  dd::CsvOptions line_options;
  line_options.has_header = false;
  std::vector<std::vector<std::string>> pending;
  std::string line;
  std::uint64_t line_number = 0;
  // A malformed stdin row (unparseable CSV, wrong column count) must
  // not kill a long-running daemon, and must not vanish silently
  // either: log a structured warning naming the line, count it, and
  // keep serving.
  static dd::obs::Counter& rejected_counter =
      dd::obs::MetricsRegistry::Global().GetCounter("serve.rows_rejected");
  auto reject = [&](const std::string& why) {
    rejected_counter.Increment();
    DD_LOG(WARN) << "serve: rejected stdin line " << line_number << ": "
                 << why;
  };
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() != '\n') continue;  // Long line.
    ++line_number;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!line.empty()) {
      auto row = dd::ParseCsv(line, line_options);
      if (!row.ok()) {
        reject(row.status().ToString());
      } else {
        for (std::size_t r = 0; r < row->num_rows(); ++r) {
          if (row->schema().num_attributes() != columns) {
            reject(dd::StrFormat("row has %zu fields, schema has %zu",
                                 row->schema().num_attributes(), columns));
            continue;
          }
          pending.push_back(row->row(r));
        }
      }
    }
    line.clear();
    if (pending.size() >= batch_rows) {
      dd::Status fed = apply(pending);
      if (!fed.ok()) return Fail(fed);
      pending.clear();
    }
  }
  if (!pending.empty()) {
    dd::Status fed = apply(pending);
    if (!fed.ok()) return Fail(fed);
  }

  if (telemetry->sampler != nullptr) telemetry->sampler->Stop();
  dd::Status trace_status = MaybeWriteTraceReport(args, "ddtool serve");
  if (!trace_status.ok()) return Fail(trace_status);
  trace_status = MaybeWriteChromeTrace(args);
  if (!trace_status.ok()) return Fail(trace_status);

  return PrintFinalState(*engine, /*watch=*/true, json);
}

// Offline reader for .dddump files (crash, stall, on-demand, or live
// dumps — they share one format). Parses, symbolizes against the
// modules loaded in this process, and pretty-prints. Exit 0 only when
// the dump is complete and carries at least one backtrace frame — the
// contract the crash-injection smoke test asserts.
int RunDiag(const dd::ArgParser& args) {
  std::string path = args.GetString("input");
  if (path.empty() && !args.positional().empty()) {
    path = args.positional().front();
  }
  if (path.empty()) {
    return Fail(dd::Status::InvalidArgument(
        "usage: ddtool diag <dump.dddump> [--json] [--no_symbolize]"));
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Fail(dd::Status::IoError("cannot open dump file: " + path));
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  std::fclose(file);

  dd::obs::diag::DiagDump dump;
  std::string error;
  if (!dd::obs::diag::ParseDiagDump(text, &dump, &error)) {
    return Fail(dd::Status::InvalidArgument(path + ": " + error));
  }
  if (!args.Has("no_symbolize")) dd::obs::diag::SymbolizeDump(&dump);

  if (args.Has("json")) {
    std::printf("%s\n", dd::obs::diag::DiagDumpToJson(dump).c_str());
  } else {
    std::fputs(dd::obs::diag::DiagDumpToText(dump).c_str(), stdout);
  }
  // Machine-greppable summary on stderr in both modes, so scripts can
  // assert on it without parsing the full report.
  std::fprintf(stderr, "backtrace frames: %zu\n", dump.TotalFrames());
  std::fprintf(stderr, "flight recorder events: %zu\n",
               dump.flight_events.size());
  if (!dump.complete) {
    std::fprintf(stderr, "ddtool diag: dump is truncated (no --- end)\n");
    return 1;
  }
  if (dump.TotalFrames() == 0) {
    std::fprintf(stderr, "ddtool diag: dump has no backtrace frames\n");
    return 1;
  }
  return 0;
}

// Reads a whole file (for `ddtool prof` inputs).
dd::Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return dd::Status::IoError("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  std::fclose(file);
  return text;
}

dd::Result<dd::obs::prof::FoldedProfile> LoadFolded(const std::string& path) {
  DD_ASSIGN_OR_RETURN(std::string text, ReadTextFile(path));
  dd::obs::prof::FoldedProfile folded;
  dd::Status parsed = dd::obs::prof::ParseFolded(text, &folded);
  if (!parsed.ok()) {
    return dd::Status(parsed.code(), path + ": " + parsed.message());
  }
  return folded;
}

// `ddtool prof`: offline consumer of folded profiles — render the
// hot-function table (or JSON summary) of one or more merged inputs,
// persist the merge, or diff two captures.
int RunProf(const dd::ArgParser& args) {
  auto top = args.GetInt("top", 20);
  if (!top.ok()) return Fail(top.status());
  if (*top < 1) {
    return Fail(dd::Status::InvalidArgument("--top must be >= 1"));
  }
  const std::size_t top_n = static_cast<std::size_t>(*top);

  if (args.Has("diff")) {
    // --diff swallows the "before" file as its value; "after" is the
    // one remaining positional.
    const std::string before_path = args.GetString("diff");
    if (before_path.empty() || args.positional().size() != 1) {
      return Fail(dd::Status::InvalidArgument(
          "usage: ddtool prof --diff before.folded after.folded [--top N]"));
    }
    auto before = LoadFolded(before_path);
    if (!before.ok()) return Fail(before.status());
    auto after = LoadFolded(args.positional().front());
    if (!after.ok()) return Fail(after.status());
    std::fputs(dd::obs::prof::DiffToText(*before, *after, top_n).c_str(),
               stdout);
    return 0;
  }

  if (args.positional().empty()) {
    return Fail(dd::Status::InvalidArgument(
        "usage: ddtool prof <a.folded> [b.folded ...] [--top N] [--json] "
        "[--merge out.folded]  |  ddtool prof --diff A B"));
  }
  std::vector<dd::obs::prof::FoldedProfile> inputs;
  for (const std::string& path : args.positional()) {
    auto folded = LoadFolded(path);
    if (!folded.ok()) return Fail(folded.status());
    inputs.push_back(std::move(*folded));
  }
  const dd::obs::prof::FoldedProfile merged =
      dd::obs::prof::MergeFolded(inputs);
  const std::string merge_out = args.GetString("merge");
  if (!merge_out.empty()) {
    dd::Status written =
        WriteTextFile(dd::obs::prof::FoldedToString(merged), merge_out);
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "ddtool prof: merged %zu profiles -> %s\n",
                 inputs.size(), merge_out.c_str());
  }
  if (args.Has("json")) {
    std::printf("%s\n",
                dd::obs::prof::FoldedSummaryJson(merged, top_n).c_str());
  } else {
    std::fputs(dd::obs::prof::TopTableToText(merged, top_n).c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::fputs(dd::BuildInfoSummary().c_str(), stdout);
    return 0;
  }
  dd::ArgParser args(argc, argv, 2);
  // --threads applies to every subcommand: it sets the process-wide
  // DefaultThreads() that the matching build, the providers, and the
  // DA/PA searches inherit (0 restores the DD_THREADS/hardware
  // default). Results are bit-identical at any value.
  if (args.Has("threads")) {
    auto threads = args.GetInt("threads", 0);
    if (!threads.ok()) return Fail(threads.status());
    if (*threads < 0) {
      return Fail(dd::Status::InvalidArgument("--threads must be >= 0"));
    }
    dd::SetDefaultThreads(static_cast<std::size_t>(*threads));
  }
  // --simd applies to every subcommand: it picks the counting-kernel
  // dispatch (core/simd_count.h), overriding the DD_SIMD environment
  // variable. Both kernel sets count identically, so results are
  // bit-identical at any value; the resolved choice appears as the
  // simd.dispatch info metric in /metrics and the JSON run report.
  if (args.Has("simd")) {
    const std::string simd = args.GetString("simd");
    dd::simd::SimdMode mode;
    if (!dd::simd::ParseSimdMode(simd, &mode)) {
      return Fail(dd::Status::InvalidArgument(
          "--simd must be auto, avx2 or scalar (got \"" + simd + "\")"));
    }
    dd::simd::SetSimdMode(mode);
  }
  // Pool-stats recording turns on whenever the run produces an
  // observability artifact that can surface it (--pool_stats forces it
  // on regardless). Recording never perturbs chunking, so results stay
  // bit-identical with the collector on or off.
  if (args.Has("pool_stats") || args.Has("chrome_trace") ||
      args.Has("trace_json") || args.Has("metrics_port") ||
      args.Has("series")) {
    dd::obs::PoolStatsCollector::Global().Enable();
  }
  // --diag_dir arms crash/stall diagnostics for any subcommand: fatal
  // signal handlers, the watchdog, the flight recorder, and SIGUSR2
  // on-demand dumps, all writing .dddump files into the directory.
  if (args.Has("diag_dir")) {
    dd::obs::diag::DiagOptions diag_options;
    diag_options.dir = args.GetString("diag_dir");
    if (diag_options.dir.empty()) {
      return Fail(dd::Status::InvalidArgument("--diag_dir needs a directory"));
    }
    auto stall = args.GetInt("stall_timeout_ms", 30000);
    if (!stall.ok()) return Fail(stall.status());
    if (*stall < 1) {
      return Fail(dd::Status::InvalidArgument("--stall_timeout_ms must be >= 1"));
    }
    diag_options.stall_timeout_ms = static_cast<int>(*stall);
    if (!dd::obs::diag::EnableDiagnostics(diag_options)) {
      return Fail(dd::Status::IoError("cannot enable diagnostics in " +
                                      diag_options.dir));
    }
  }
  // --profile wraps the whole subcommand in a sampling-profiler
  // capture (--profile_hz alone implies it). Sampling reads state; it
  // never perturbs chunking or results — outputs stay bit-identical
  // with profiling on or off.
  const bool profile = args.Has("profile") || args.Has("profile_hz");
  if (profile) {
    auto hz = args.GetInt("profile_hz", 99);
    if (!hz.ok()) return Fail(hz.status());
    dd::obs::prof::ProfilerOptions options;
    options.hz = static_cast<int>(*hz);
    dd::Status started = dd::obs::prof::Profiler::Global().Start(options);
    if (!started.ok()) return Fail(started);
  }
  int rc;
  if (command == "generate") rc = RunGenerate(args);
  else if (command == "determine") rc = RunDetermine(args);
  else if (command == "explain") rc = RunExplain(args);
  else if (command == "detect") rc = RunDetect(args);
  else if (command == "discover") rc = RunDiscover(args);
  else if (command == "append") rc = RunIncremental(args, /*watch=*/false);
  else if (command == "watch") rc = RunIncremental(args, /*watch=*/true);
  else if (command == "serve") rc = RunServe(args);
  else if (command == "diag") rc = RunDiag(args);
  else if (command == "prof") rc = RunProf(args);
  else {
    if (profile) dd::obs::prof::Profiler::Global().Stop();
    return Usage();
  }
  if (profile) {
    const dd::obs::prof::Profile captured =
        dd::obs::prof::Profiler::Global().Stop();
    const std::string prefix =
        args.GetString("profile_out", "ddtool." + command + ".prof");
    const dd::obs::prof::FoldedProfile folded =
        dd::obs::prof::FoldProfile(captured);
    dd::Status written = WriteTextFile(
        dd::obs::prof::FoldedToString(folded), prefix + ".folded");
    if (written.ok()) {
      written = WriteTextFile(
          dd::obs::prof::ProfileSummaryJson(captured) + "\n",
          prefix + ".json");
    }
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr,
                 "profile: %llu samples (%llu dropped) at %d Hz -> "
                 "%s.folded, %s.json\n",
                 static_cast<unsigned long long>(captured.samples),
                 static_cast<unsigned long long>(captured.dropped),
                 captured.hz, prefix.c_str(), prefix.c_str());
  }
  return rc;
}
