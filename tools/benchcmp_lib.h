// Perf-regression gate over BENCH_JSON rows: loads two bench captures
// (a committed baseline and a fresh run), matches rows by
// (bench, phase, threads), and fails when a fresh time exceeds the
// baseline by more than a noise-aware threshold. Designed for the
// benchmarks/baselines/ workflow — see tools/benchcmp.cc for the CLI
// and .github/workflows/ci.yml for the smoke gate.
//
// Accepted inputs (auto-detected per file):
//   * a baseline document: one JSON object with a "rows" array, plus
//     optional top-level "bench", "host_cores", "run_id" defaults
//     (benchmarks/baselines/BENCH_micro_parallel.json);
//   * raw harness stdout: any text where measurement lines carry a
//     "BENCH_JSON {...}" prefix (what build/bench/micro_parallel
//     prints), one JSON object per line.
//
// Noise handling, in order of importance:
//   * min-of-k — duplicate keys collapse to the minimum time, so
//     harnesses can emit repeated sweeps and only the best counts
//     (minimum is the right estimator when noise only adds time);
//   * relative tolerance — fail only past base * (1 + rel);
//   * absolute floor — sub-floor rows never fail, however large the
//     ratio (a 0.2ms phase doubling is scheduler jitter, not a
//     regression);
//   * host check — rows captured on hosts with different core counts
//     are incomparable for a wall-time gate; the comparison refuses
//     (CompareReport::host_mismatch) unless explicitly allowed.

#ifndef DD_TOOLS_BENCHCMP_LIB_H_
#define DD_TOOLS_BENCHCMP_LIB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dd::bench {

// One measurement after min-of-k dedup.
struct BenchRow {
  std::string bench;
  std::string phase;
  std::int64_t threads = 0;  // 0 when the row carries no threads key.
  double value = 0.0;        // The compared metric (seconds).
  int samples = 1;           // Rows merged into this key.
};

// One parsed capture.
struct BenchFile {
  std::vector<BenchRow> rows;   // Deduped, sorted by (bench,phase,threads).
  std::int64_t host_cores = 0;  // 0 = not stamped.
  std::string run_id;
  std::size_t skipped_rows = 0;  // Rows without the metric key.
};

// Parses `content` (either accepted input shape) extracting
// `metric_key` (e.g. "elapsed_s") from every row object.
Result<BenchFile> ParseBenchContent(const std::string& content,
                                    const std::string& metric_key);

// Reads `path` and parses it. When `path` is a directory, parses every
// regular *.json file inside and merges their rows (min-of-k across
// files too) — the benchmarks/baselines/ layout.
Result<BenchFile> LoadBenchFile(const std::string& path,
                                const std::string& metric_key);

struct CompareOptions {
  // Fail when fresh > base * (1 + rel_tolerance) + ... .
  double rel_tolerance = 0.5;
  // ... and fresh - base > abs_floor_s (both must hold).
  double abs_floor_s = 0.002;
  bool allow_host_mismatch = false;
};

struct RowComparison {
  BenchRow base;
  BenchRow fresh;
  double ratio = 0.0;  // fresh / base; 0 when base is 0.
  bool regressed = false;
};

struct CompareReport {
  std::vector<RowComparison> rows;  // Keys present in both captures.
  std::vector<BenchRow> only_base;   // Baseline keys the fresh run lacks.
  std::vector<BenchRow> only_fresh;  // New keys with no baseline yet.
  bool host_mismatch = false;
  std::int64_t base_host_cores = 0;
  std::int64_t fresh_host_cores = 0;
  std::size_t regressions = 0;
  double worst_ratio = 0.0;  // Max fresh/base over matched rows.

  // True when the gate passes: hosts comparable (or mismatch allowed,
  // in which case host_mismatch is false) and no row regressed.
  bool ok() const { return !host_mismatch && regressions == 0; }
};

CompareReport CompareBench(const BenchFile& base, const BenchFile& fresh,
                           const CompareOptions& options);

// Human-readable pass/fail table.
std::string CompareReportToText(const CompareReport& report,
                                const CompareOptions& options);

// One appendable JSONL row for BENCH_trajectory.json: the fresh run's
// timings plus the comparison verdict, stamped with `captured_unix`
// (caller supplies the clock) and the fresh run's id/host.
std::string TrajectoryRow(const CompareReport& report,
                          const BenchFile& fresh,
                          std::int64_t captured_unix);

}  // namespace dd::bench

#endif  // DD_TOOLS_BENCHCMP_LIB_H_
