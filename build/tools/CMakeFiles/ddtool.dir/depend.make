# Empty dependencies file for ddtool.
# This may be replaced when dependencies are built.
