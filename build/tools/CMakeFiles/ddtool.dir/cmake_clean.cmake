file(REMOVE_RECURSE
  "CMakeFiles/ddtool.dir/ddtool.cc.o"
  "CMakeFiles/ddtool.dir/ddtool.cc.o.d"
  "ddtool"
  "ddtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
