file(REMOVE_RECURSE
  "CMakeFiles/da_test.dir/da_test.cc.o"
  "CMakeFiles/da_test.dir/da_test.cc.o.d"
  "da_test"
  "da_test.pdb"
  "da_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
