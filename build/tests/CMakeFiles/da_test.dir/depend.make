# Empty dependencies file for da_test.
# This may be replaced when dependencies are built.
