file(REMOVE_RECURSE
  "CMakeFiles/reason_test.dir/reason_test.cc.o"
  "CMakeFiles/reason_test.dir/reason_test.cc.o.d"
  "reason_test"
  "reason_test.pdb"
  "reason_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reason_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
