# Empty dependencies file for reason_test.
# This may be replaced when dependencies are built.
