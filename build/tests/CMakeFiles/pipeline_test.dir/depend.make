# Empty dependencies file for pipeline_test.
# This may be replaced when dependencies are built.
