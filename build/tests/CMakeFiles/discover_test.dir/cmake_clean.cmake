file(REMOVE_RECURSE
  "CMakeFiles/discover_test.dir/discover_test.cc.o"
  "CMakeFiles/discover_test.dir/discover_test.cc.o.d"
  "discover_test"
  "discover_test.pdb"
  "discover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
