# Empty dependencies file for discover_test.
# This may be replaced when dependencies are built.
