file(REMOVE_RECURSE
  "CMakeFiles/detect_test.dir/detect_test.cc.o"
  "CMakeFiles/detect_test.dir/detect_test.cc.o.d"
  "detect_test"
  "detect_test.pdb"
  "detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
