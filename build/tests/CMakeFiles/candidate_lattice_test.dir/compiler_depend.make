# Empty compiler generated dependencies file for candidate_lattice_test.
# This may be replaced when dependencies are built.
