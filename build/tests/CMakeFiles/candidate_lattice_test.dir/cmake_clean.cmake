file(REMOVE_RECURSE
  "CMakeFiles/candidate_lattice_test.dir/candidate_lattice_test.cc.o"
  "CMakeFiles/candidate_lattice_test.dir/candidate_lattice_test.cc.o.d"
  "candidate_lattice_test"
  "candidate_lattice_test.pdb"
  "candidate_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
