file(REMOVE_RECURSE
  "CMakeFiles/schema_test.dir/schema_test.cc.o"
  "CMakeFiles/schema_test.dir/schema_test.cc.o.d"
  "schema_test"
  "schema_test.pdb"
  "schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
