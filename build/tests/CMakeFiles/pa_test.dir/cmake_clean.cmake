file(REMOVE_RECURSE
  "CMakeFiles/pa_test.dir/pa_test.cc.o"
  "CMakeFiles/pa_test.dir/pa_test.cc.o.d"
  "pa_test"
  "pa_test.pdb"
  "pa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
