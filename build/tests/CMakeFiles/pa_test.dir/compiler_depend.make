# Empty compiler generated dependencies file for pa_test.
# This may be replaced when dependencies are built.
