# Empty dependencies file for generators_test.
# This may be replaced when dependencies are built.
