# Empty dependencies file for expected_utility_test.
# This may be replaced when dependencies are built.
