file(REMOVE_RECURSE
  "CMakeFiles/expected_utility_test.dir/expected_utility_test.cc.o"
  "CMakeFiles/expected_utility_test.dir/expected_utility_test.cc.o.d"
  "expected_utility_test"
  "expected_utility_test.pdb"
  "expected_utility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_utility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
