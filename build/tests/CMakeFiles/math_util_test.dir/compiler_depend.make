# Empty compiler generated dependencies file for math_util_test.
# This may be replaced when dependencies are built.
