file(REMOVE_RECURSE
  "CMakeFiles/math_util_test.dir/math_util_test.cc.o"
  "CMakeFiles/math_util_test.dir/math_util_test.cc.o.d"
  "math_util_test"
  "math_util_test.pdb"
  "math_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
