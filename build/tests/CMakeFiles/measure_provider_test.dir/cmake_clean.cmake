file(REMOVE_RECURSE
  "CMakeFiles/measure_provider_test.dir/measure_provider_test.cc.o"
  "CMakeFiles/measure_provider_test.dir/measure_provider_test.cc.o.d"
  "measure_provider_test"
  "measure_provider_test.pdb"
  "measure_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
