# Empty compiler generated dependencies file for measure_provider_test.
# This may be replaced when dependencies are built.
