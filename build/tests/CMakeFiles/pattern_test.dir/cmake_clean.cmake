file(REMOVE_RECURSE
  "CMakeFiles/pattern_test.dir/pattern_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern_test.cc.o.d"
  "pattern_test"
  "pattern_test.pdb"
  "pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
