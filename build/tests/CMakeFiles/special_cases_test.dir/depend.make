# Empty dependencies file for special_cases_test.
# This may be replaced when dependencies are built.
