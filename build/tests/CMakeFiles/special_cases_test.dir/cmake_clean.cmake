file(REMOVE_RECURSE
  "CMakeFiles/special_cases_test.dir/special_cases_test.cc.o"
  "CMakeFiles/special_cases_test.dir/special_cases_test.cc.o.d"
  "special_cases_test"
  "special_cases_test.pdb"
  "special_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
