file(REMOVE_RECURSE
  "CMakeFiles/corruptor_test.dir/corruptor_test.cc.o"
  "CMakeFiles/corruptor_test.dir/corruptor_test.cc.o.d"
  "corruptor_test"
  "corruptor_test.pdb"
  "corruptor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruptor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
