# Empty compiler generated dependencies file for corruptor_test.
# This may be replaced when dependencies are built.
