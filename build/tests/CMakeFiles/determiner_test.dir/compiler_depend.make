# Empty compiler generated dependencies file for determiner_test.
# This may be replaced when dependencies are built.
