file(REMOVE_RECURSE
  "CMakeFiles/determiner_test.dir/determiner_test.cc.o"
  "CMakeFiles/determiner_test.dir/determiner_test.cc.o.d"
  "determiner_test"
  "determiner_test.pdb"
  "determiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
