file(REMOVE_RECURSE
  "CMakeFiles/result_io_test.dir/result_io_test.cc.o"
  "CMakeFiles/result_io_test.dir/result_io_test.cc.o.d"
  "result_io_test"
  "result_io_test.pdb"
  "result_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
