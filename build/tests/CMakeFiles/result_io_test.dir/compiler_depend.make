# Empty compiler generated dependencies file for result_io_test.
# This may be replaced when dependencies are built.
