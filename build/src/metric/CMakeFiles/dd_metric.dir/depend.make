# Empty dependencies file for dd_metric.
# This may be replaced when dependencies are built.
