file(REMOVE_RECURSE
  "CMakeFiles/dd_metric.dir/levenshtein.cc.o"
  "CMakeFiles/dd_metric.dir/levenshtein.cc.o.d"
  "CMakeFiles/dd_metric.dir/qgram.cc.o"
  "CMakeFiles/dd_metric.dir/qgram.cc.o.d"
  "CMakeFiles/dd_metric.dir/registry.cc.o"
  "CMakeFiles/dd_metric.dir/registry.cc.o.d"
  "CMakeFiles/dd_metric.dir/token_metrics.cc.o"
  "CMakeFiles/dd_metric.dir/token_metrics.cc.o.d"
  "libdd_metric.a"
  "libdd_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
