file(REMOVE_RECURSE
  "libdd_metric.a"
)
