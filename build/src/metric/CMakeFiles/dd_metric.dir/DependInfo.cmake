
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metric/levenshtein.cc" "src/metric/CMakeFiles/dd_metric.dir/levenshtein.cc.o" "gcc" "src/metric/CMakeFiles/dd_metric.dir/levenshtein.cc.o.d"
  "/root/repo/src/metric/qgram.cc" "src/metric/CMakeFiles/dd_metric.dir/qgram.cc.o" "gcc" "src/metric/CMakeFiles/dd_metric.dir/qgram.cc.o.d"
  "/root/repo/src/metric/registry.cc" "src/metric/CMakeFiles/dd_metric.dir/registry.cc.o" "gcc" "src/metric/CMakeFiles/dd_metric.dir/registry.cc.o.d"
  "/root/repo/src/metric/token_metrics.cc" "src/metric/CMakeFiles/dd_metric.dir/token_metrics.cc.o" "gcc" "src/metric/CMakeFiles/dd_metric.dir/token_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
