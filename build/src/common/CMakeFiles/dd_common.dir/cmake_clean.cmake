file(REMOVE_RECURSE
  "CMakeFiles/dd_common.dir/flags.cc.o"
  "CMakeFiles/dd_common.dir/flags.cc.o.d"
  "CMakeFiles/dd_common.dir/math_util.cc.o"
  "CMakeFiles/dd_common.dir/math_util.cc.o.d"
  "CMakeFiles/dd_common.dir/parallel.cc.o"
  "CMakeFiles/dd_common.dir/parallel.cc.o.d"
  "CMakeFiles/dd_common.dir/status.cc.o"
  "CMakeFiles/dd_common.dir/status.cc.o.d"
  "CMakeFiles/dd_common.dir/string_util.cc.o"
  "CMakeFiles/dd_common.dir/string_util.cc.o.d"
  "libdd_common.a"
  "libdd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
