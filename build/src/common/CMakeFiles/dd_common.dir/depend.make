# Empty dependencies file for dd_common.
# This may be replaced when dependencies are built.
