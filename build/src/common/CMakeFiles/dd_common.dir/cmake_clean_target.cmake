file(REMOVE_RECURSE
  "libdd_common.a"
)
