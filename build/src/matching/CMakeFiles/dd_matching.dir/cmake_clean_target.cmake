file(REMOVE_RECURSE
  "libdd_matching.a"
)
