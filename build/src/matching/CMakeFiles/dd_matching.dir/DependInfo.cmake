
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/builder.cc" "src/matching/CMakeFiles/dd_matching.dir/builder.cc.o" "gcc" "src/matching/CMakeFiles/dd_matching.dir/builder.cc.o.d"
  "/root/repo/src/matching/matching_relation.cc" "src/matching/CMakeFiles/dd_matching.dir/matching_relation.cc.o" "gcc" "src/matching/CMakeFiles/dd_matching.dir/matching_relation.cc.o.d"
  "/root/repo/src/matching/serialization.cc" "src/matching/CMakeFiles/dd_matching.dir/serialization.cc.o" "gcc" "src/matching/CMakeFiles/dd_matching.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/dd_metric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
