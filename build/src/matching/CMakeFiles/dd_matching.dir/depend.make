# Empty dependencies file for dd_matching.
# This may be replaced when dependencies are built.
