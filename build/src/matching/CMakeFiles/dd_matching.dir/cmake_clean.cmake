file(REMOVE_RECURSE
  "CMakeFiles/dd_matching.dir/builder.cc.o"
  "CMakeFiles/dd_matching.dir/builder.cc.o.d"
  "CMakeFiles/dd_matching.dir/matching_relation.cc.o"
  "CMakeFiles/dd_matching.dir/matching_relation.cc.o.d"
  "CMakeFiles/dd_matching.dir/serialization.cc.o"
  "CMakeFiles/dd_matching.dir/serialization.cc.o.d"
  "libdd_matching.a"
  "libdd_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
