# Empty compiler generated dependencies file for dd_reason.
# This may be replaced when dependencies are built.
