file(REMOVE_RECURSE
  "libdd_reason.a"
)
