file(REMOVE_RECURSE
  "CMakeFiles/dd_reason.dir/implication.cc.o"
  "CMakeFiles/dd_reason.dir/implication.cc.o.d"
  "CMakeFiles/dd_reason.dir/statement.cc.o"
  "CMakeFiles/dd_reason.dir/statement.cc.o.d"
  "libdd_reason.a"
  "libdd_reason.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_reason.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
