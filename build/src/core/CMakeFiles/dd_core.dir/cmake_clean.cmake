file(REMOVE_RECURSE
  "CMakeFiles/dd_core.dir/candidate_lattice.cc.o"
  "CMakeFiles/dd_core.dir/candidate_lattice.cc.o.d"
  "CMakeFiles/dd_core.dir/da.cc.o"
  "CMakeFiles/dd_core.dir/da.cc.o.d"
  "CMakeFiles/dd_core.dir/determiner.cc.o"
  "CMakeFiles/dd_core.dir/determiner.cc.o.d"
  "CMakeFiles/dd_core.dir/expected_utility.cc.o"
  "CMakeFiles/dd_core.dir/expected_utility.cc.o.d"
  "CMakeFiles/dd_core.dir/grid_provider.cc.o"
  "CMakeFiles/dd_core.dir/grid_provider.cc.o.d"
  "CMakeFiles/dd_core.dir/measures.cc.o"
  "CMakeFiles/dd_core.dir/measures.cc.o.d"
  "CMakeFiles/dd_core.dir/pa.cc.o"
  "CMakeFiles/dd_core.dir/pa.cc.o.d"
  "CMakeFiles/dd_core.dir/pattern.cc.o"
  "CMakeFiles/dd_core.dir/pattern.cc.o.d"
  "CMakeFiles/dd_core.dir/result_filter.cc.o"
  "CMakeFiles/dd_core.dir/result_filter.cc.o.d"
  "CMakeFiles/dd_core.dir/result_io.cc.o"
  "CMakeFiles/dd_core.dir/result_io.cc.o.d"
  "CMakeFiles/dd_core.dir/rule.cc.o"
  "CMakeFiles/dd_core.dir/rule.cc.o.d"
  "CMakeFiles/dd_core.dir/scan_provider.cc.o"
  "CMakeFiles/dd_core.dir/scan_provider.cc.o.d"
  "CMakeFiles/dd_core.dir/skyline.cc.o"
  "CMakeFiles/dd_core.dir/skyline.cc.o.d"
  "CMakeFiles/dd_core.dir/special_cases.cc.o"
  "CMakeFiles/dd_core.dir/special_cases.cc.o.d"
  "libdd_core.a"
  "libdd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
