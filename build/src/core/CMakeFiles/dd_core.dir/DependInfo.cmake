
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_lattice.cc" "src/core/CMakeFiles/dd_core.dir/candidate_lattice.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/candidate_lattice.cc.o.d"
  "/root/repo/src/core/da.cc" "src/core/CMakeFiles/dd_core.dir/da.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/da.cc.o.d"
  "/root/repo/src/core/determiner.cc" "src/core/CMakeFiles/dd_core.dir/determiner.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/determiner.cc.o.d"
  "/root/repo/src/core/expected_utility.cc" "src/core/CMakeFiles/dd_core.dir/expected_utility.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/expected_utility.cc.o.d"
  "/root/repo/src/core/grid_provider.cc" "src/core/CMakeFiles/dd_core.dir/grid_provider.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/grid_provider.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/core/CMakeFiles/dd_core.dir/measures.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/measures.cc.o.d"
  "/root/repo/src/core/pa.cc" "src/core/CMakeFiles/dd_core.dir/pa.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/pa.cc.o.d"
  "/root/repo/src/core/pattern.cc" "src/core/CMakeFiles/dd_core.dir/pattern.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/pattern.cc.o.d"
  "/root/repo/src/core/result_filter.cc" "src/core/CMakeFiles/dd_core.dir/result_filter.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/result_filter.cc.o.d"
  "/root/repo/src/core/result_io.cc" "src/core/CMakeFiles/dd_core.dir/result_io.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/result_io.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/dd_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/rule.cc.o.d"
  "/root/repo/src/core/scan_provider.cc" "src/core/CMakeFiles/dd_core.dir/scan_provider.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/scan_provider.cc.o.d"
  "/root/repo/src/core/skyline.cc" "src/core/CMakeFiles/dd_core.dir/skyline.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/skyline.cc.o.d"
  "/root/repo/src/core/special_cases.cc" "src/core/CMakeFiles/dd_core.dir/special_cases.cc.o" "gcc" "src/core/CMakeFiles/dd_core.dir/special_cases.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/dd_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/dd_metric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
