# Empty compiler generated dependencies file for dd_detect.
# This may be replaced when dependencies are built.
