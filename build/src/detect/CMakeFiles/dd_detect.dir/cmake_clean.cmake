file(REMOVE_RECURSE
  "CMakeFiles/dd_detect.dir/detection_eval.cc.o"
  "CMakeFiles/dd_detect.dir/detection_eval.cc.o.d"
  "CMakeFiles/dd_detect.dir/violation_detector.cc.o"
  "CMakeFiles/dd_detect.dir/violation_detector.cc.o.d"
  "libdd_detect.a"
  "libdd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
