file(REMOVE_RECURSE
  "libdd_detect.a"
)
