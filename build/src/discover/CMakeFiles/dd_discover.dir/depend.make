# Empty dependencies file for dd_discover.
# This may be replaced when dependencies are built.
