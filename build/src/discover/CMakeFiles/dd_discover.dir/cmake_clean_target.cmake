file(REMOVE_RECURSE
  "libdd_discover.a"
)
