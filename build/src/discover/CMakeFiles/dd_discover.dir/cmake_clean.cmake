file(REMOVE_RECURSE
  "CMakeFiles/dd_discover.dir/rule_explorer.cc.o"
  "CMakeFiles/dd_discover.dir/rule_explorer.cc.o.d"
  "libdd_discover.a"
  "libdd_discover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_discover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
