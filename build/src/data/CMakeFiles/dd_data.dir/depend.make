# Empty dependencies file for dd_data.
# This may be replaced when dependencies are built.
