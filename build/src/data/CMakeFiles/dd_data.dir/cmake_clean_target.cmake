file(REMOVE_RECURSE
  "libdd_data.a"
)
