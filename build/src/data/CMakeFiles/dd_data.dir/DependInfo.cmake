
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/citeseer_generator.cc" "src/data/CMakeFiles/dd_data.dir/citeseer_generator.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/citeseer_generator.cc.o.d"
  "/root/repo/src/data/cora_generator.cc" "src/data/CMakeFiles/dd_data.dir/cora_generator.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/cora_generator.cc.o.d"
  "/root/repo/src/data/corruptor.cc" "src/data/CMakeFiles/dd_data.dir/corruptor.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/corruptor.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/dd_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/csv.cc.o.d"
  "/root/repo/src/data/hotel_generator.cc" "src/data/CMakeFiles/dd_data.dir/hotel_generator.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/hotel_generator.cc.o.d"
  "/root/repo/src/data/perturb.cc" "src/data/CMakeFiles/dd_data.dir/perturb.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/perturb.cc.o.d"
  "/root/repo/src/data/relation.cc" "src/data/CMakeFiles/dd_data.dir/relation.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/relation.cc.o.d"
  "/root/repo/src/data/restaurant_generator.cc" "src/data/CMakeFiles/dd_data.dir/restaurant_generator.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/restaurant_generator.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/dd_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/dd_data.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
