file(REMOVE_RECURSE
  "CMakeFiles/dd_data.dir/citeseer_generator.cc.o"
  "CMakeFiles/dd_data.dir/citeseer_generator.cc.o.d"
  "CMakeFiles/dd_data.dir/cora_generator.cc.o"
  "CMakeFiles/dd_data.dir/cora_generator.cc.o.d"
  "CMakeFiles/dd_data.dir/corruptor.cc.o"
  "CMakeFiles/dd_data.dir/corruptor.cc.o.d"
  "CMakeFiles/dd_data.dir/csv.cc.o"
  "CMakeFiles/dd_data.dir/csv.cc.o.d"
  "CMakeFiles/dd_data.dir/hotel_generator.cc.o"
  "CMakeFiles/dd_data.dir/hotel_generator.cc.o.d"
  "CMakeFiles/dd_data.dir/perturb.cc.o"
  "CMakeFiles/dd_data.dir/perturb.cc.o.d"
  "CMakeFiles/dd_data.dir/relation.cc.o"
  "CMakeFiles/dd_data.dir/relation.cc.o.d"
  "CMakeFiles/dd_data.dir/restaurant_generator.cc.o"
  "CMakeFiles/dd_data.dir/restaurant_generator.cc.o.d"
  "CMakeFiles/dd_data.dir/schema.cc.o"
  "CMakeFiles/dd_data.dir/schema.cc.o.d"
  "libdd_data.a"
  "libdd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
