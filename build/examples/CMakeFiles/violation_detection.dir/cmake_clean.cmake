file(REMOVE_RECURSE
  "CMakeFiles/violation_detection.dir/violation_detection.cpp.o"
  "CMakeFiles/violation_detection.dir/violation_detection.cpp.o.d"
  "violation_detection"
  "violation_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
