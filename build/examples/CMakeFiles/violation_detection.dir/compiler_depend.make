# Empty compiler generated dependencies file for violation_detection.
# This may be replaced when dependencies are built.
