# Empty dependencies file for custom_metric.
# This may be replaced when dependencies are built.
