file(REMOVE_RECURSE
  "CMakeFiles/custom_metric.dir/custom_metric.cpp.o"
  "CMakeFiles/custom_metric.dir/custom_metric.cpp.o.d"
  "custom_metric"
  "custom_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
