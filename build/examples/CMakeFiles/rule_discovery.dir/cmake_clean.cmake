file(REMOVE_RECURSE
  "CMakeFiles/rule_discovery.dir/rule_discovery.cpp.o"
  "CMakeFiles/rule_discovery.dir/rule_discovery.cpp.o.d"
  "rule_discovery"
  "rule_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
