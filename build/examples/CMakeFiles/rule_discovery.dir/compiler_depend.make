# Empty compiler generated dependencies file for rule_discovery.
# This may be replaced when dependencies are built.
