file(REMOVE_RECURSE
  "CMakeFiles/cora_discovery.dir/cora_discovery.cpp.o"
  "CMakeFiles/cora_discovery.dir/cora_discovery.cpp.o.d"
  "cora_discovery"
  "cora_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cora_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
