# Empty compiler generated dependencies file for cora_discovery.
# This may be replaced when dependencies are built.
