# Empty compiler generated dependencies file for micro_matching.
# This may be replaced when dependencies are built.
