file(REMOVE_RECURSE
  "../bench/micro_matching"
  "../bench/micro_matching.pdb"
  "CMakeFiles/micro_matching.dir/micro_matching.cc.o"
  "CMakeFiles/micro_matching.dir/micro_matching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
