# Empty dependencies file for ablation_provider.
# This may be replaced when dependencies are built.
