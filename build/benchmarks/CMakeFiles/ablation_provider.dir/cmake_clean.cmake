file(REMOVE_RECURSE
  "../bench/ablation_provider"
  "../bench/ablation_provider.pdb"
  "CMakeFiles/ablation_provider.dir/ablation_provider.cc.o"
  "CMakeFiles/ablation_provider.dir/ablation_provider.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
