file(REMOVE_RECURSE
  "../bench/fig6_scalability_l5"
  "../bench/fig6_scalability_l5.pdb"
  "CMakeFiles/fig6_scalability_l5.dir/fig6_scalability_l5.cc.o"
  "CMakeFiles/fig6_scalability_l5.dir/fig6_scalability_l5.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scalability_l5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
