# Empty dependencies file for fig6_scalability_l5.
# This may be replaced when dependencies are built.
