file(REMOVE_RECURSE
  "../bench/ablation_prior"
  "../bench/ablation_prior.pdb"
  "CMakeFiles/ablation_prior.dir/ablation_prior.cc.o"
  "CMakeFiles/ablation_prior.dir/ablation_prior.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
