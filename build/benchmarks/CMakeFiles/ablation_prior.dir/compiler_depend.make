# Empty compiler generated dependencies file for ablation_prior.
# This may be replaced when dependencies are built.
