file(REMOVE_RECURSE
  "../bench/micro_counting"
  "../bench/micro_counting.pdb"
  "CMakeFiles/micro_counting.dir/micro_counting.cc.o"
  "CMakeFiles/micro_counting.dir/micro_counting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
