# Empty dependencies file for micro_counting.
# This may be replaced when dependencies are built.
