file(REMOVE_RECURSE
  "../bench/table5_orders"
  "../bench/table5_orders.pdb"
  "CMakeFiles/table5_orders.dir/table5_orders.cc.o"
  "CMakeFiles/table5_orders.dir/table5_orders.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
