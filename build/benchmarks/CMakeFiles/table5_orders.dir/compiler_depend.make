# Empty compiler generated dependencies file for table5_orders.
# This may be replaced when dependencies are built.
