file(REMOVE_RECURSE
  "../bench/fig5_determinant"
  "../bench/fig5_determinant.pdb"
  "CMakeFiles/fig5_determinant.dir/fig5_determinant.cc.o"
  "CMakeFiles/fig5_determinant.dir/fig5_determinant.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_determinant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
