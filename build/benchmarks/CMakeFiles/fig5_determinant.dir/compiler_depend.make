# Empty compiler generated dependencies file for fig5_determinant.
# This may be replaced when dependencies are built.
