file(REMOVE_RECURSE
  "../bench/micro_metrics"
  "../bench/micro_metrics.pdb"
  "CMakeFiles/micro_metrics.dir/micro_metrics.cc.o"
  "CMakeFiles/micro_metrics.dir/micro_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
