# Empty dependencies file for micro_metrics.
# This may be replaced when dependencies are built.
