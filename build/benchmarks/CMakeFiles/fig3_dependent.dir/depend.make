# Empty dependencies file for fig3_dependent.
# This may be replaced when dependencies are built.
