file(REMOVE_RECURSE
  "../bench/fig3_dependent"
  "../bench/fig3_dependent.pdb"
  "CMakeFiles/fig3_dependent.dir/fig3_dependent.cc.o"
  "CMakeFiles/fig3_dependent.dir/fig3_dependent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dependent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
