file(REMOVE_RECURSE
  "CMakeFiles/dd_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/dd_bench_util.dir/bench_util.cc.o.d"
  "libdd_bench_util.a"
  "libdd_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
