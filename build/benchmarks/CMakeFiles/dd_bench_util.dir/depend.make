# Empty dependencies file for dd_bench_util.
# This may be replaced when dependencies are built.
