file(REMOVE_RECURSE
  "libdd_bench_util.a"
)
