# Empty compiler generated dependencies file for fig2_scalability.
# This may be replaced when dependencies are built.
