file(REMOVE_RECURSE
  "../bench/fig2_scalability"
  "../bench/fig2_scalability.pdb"
  "CMakeFiles/fig2_scalability.dir/fig2_scalability.cc.o"
  "CMakeFiles/fig2_scalability.dir/fig2_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
