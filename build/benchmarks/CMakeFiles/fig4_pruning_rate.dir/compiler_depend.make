# Empty compiler generated dependencies file for fig4_pruning_rate.
# This may be replaced when dependencies are built.
