file(REMOVE_RECURSE
  "../bench/fig4_pruning_rate"
  "../bench/fig4_pruning_rate.pdb"
  "CMakeFiles/fig4_pruning_rate.dir/fig4_pruning_rate.cc.o"
  "CMakeFiles/fig4_pruning_rate.dir/fig4_pruning_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pruning_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
