
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/benchmarks/fig4_pruning_rate.cc" "benchmarks/CMakeFiles/fig4_pruning_rate.dir/fig4_pruning_rate.cc.o" "gcc" "benchmarks/CMakeFiles/fig4_pruning_rate.dir/fig4_pruning_rate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/benchmarks/CMakeFiles/dd_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/dd_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/dd_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
