file(REMOVE_RECURSE
  "../bench/table3_effectiveness"
  "../bench/table3_effectiveness.pdb"
  "CMakeFiles/table3_effectiveness.dir/table3_effectiveness.cc.o"
  "CMakeFiles/table3_effectiveness.dir/table3_effectiveness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
