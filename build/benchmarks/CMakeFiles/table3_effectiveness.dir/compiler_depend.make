# Empty compiler generated dependencies file for table3_effectiveness.
# This may be replaced when dependencies are built.
