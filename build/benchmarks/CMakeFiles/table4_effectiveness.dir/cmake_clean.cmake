file(REMOVE_RECURSE
  "../bench/table4_effectiveness"
  "../bench/table4_effectiveness.pdb"
  "CMakeFiles/table4_effectiveness.dir/table4_effectiveness.cc.o"
  "CMakeFiles/table4_effectiveness.dir/table4_effectiveness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
