# Empty compiler generated dependencies file for table4_effectiveness.
# This may be replaced when dependencies are built.
